//! The worker: connects to a coordinator, evaluates dispatched units, and
//! streams results back.
//!
//! A worker evaluates through [`sea_campaign::produce_unit`] — the exact
//! path the in-process thread-pool workers run (optional local cache
//! probe, evaluation, best-effort cache publication) — so a unit computes
//! the same bytes no matter which machine runs it. While a unit
//! evaluates, the connection stays live with periodic
//! [`FrameKind::Heartbeat`] frames so the coordinator can tell "slow"
//! from "dead".

use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use sea_campaign::{encode_result, produce_unit, Cache, CampaignError};

use crate::frame::{
    check_handshake, handshake_line, read_frame, write_frame, FrameError, FrameKind,
};
use crate::terr;
use crate::wire;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig<'a> {
    /// Optional local result cache, probed before evaluating and
    /// published to after — shares work across campaigns exactly like the
    /// local engine's `--cache`.
    pub cache: Option<&'a Cache>,
    /// Worker threads for each unit's own scaling enumeration (the
    /// outcome is job-count invariant; this only trades wall-clock).
    pub inner_jobs: usize,
    /// How often to heartbeat while evaluating.
    pub heartbeat_interval: Duration,
    /// Keep retrying the initial connect for this long (workers often
    /// start before their coordinator listens).
    pub connect_retry: Duration,
    /// Test hook: after this many completed units, drop the connection
    /// without replying the next time work arrives — simulates a worker
    /// killed mid-unit.
    pub abandon_after: Option<usize>,
}

impl Default for WorkerConfig<'_> {
    fn default() -> Self {
        WorkerConfig {
            cache: None,
            inner_jobs: 1,
            heartbeat_interval: Duration::from_secs(2),
            connect_retry: Duration::from_secs(10),
            abandon_after: None,
        }
    }
}

/// What a worker did before disconnecting.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Units evaluated (or served from the worker's local cache).
    pub completed: usize,
    /// Completions served from the worker-side cache.
    pub cache_hits: usize,
    /// Whether the worker left deliberately (a clean [`FrameKind::Shutdown`]
    /// from the coordinator, or the `abandon_after` test hook).
    pub clean_exit: bool,
}

fn connect(addr: &str, retry: Duration) -> Result<TcpStream, CampaignError> {
    let deadline = Instant::now() + retry;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                crate::configure_stream(&stream)
                    .map_err(|e| terr(format!("cannot configure the dispatch socket: {e}")))?;
                return Ok(stream);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(terr(format!("cannot connect to coordinator {addr}: {e}"))),
        }
    }
}

/// Connects to a coordinator, serves dispatched units until a clean
/// shutdown, and reports what it did.
///
/// # Errors
///
/// Connection/handshake failures and a connection lost mid-campaign
/// (the coordinator re-queues the in-flight unit either way).
pub fn run_worker(addr: &str, config: &WorkerConfig<'_>) -> Result<WorkerReport, CampaignError> {
    let mut stream = connect(addr, config.connect_retry)?;
    write_frame(&mut stream, FrameKind::Hello, handshake_line().as_bytes())
        .map_err(|e| terr(format!("cannot greet coordinator: {e}")))?;
    match read_frame(&mut stream) {
        Ok(frame) if frame.kind == FrameKind::Welcome => {
            check_handshake(&frame.body).map_err(terr)?;
        }
        Ok(frame) if frame.kind == FrameKind::Refuse => {
            return Err(terr(format!(
                "coordinator refused the connection: {}",
                frame.text().map(str::to_owned).unwrap_or_default()
            )));
        }
        Ok(frame) => {
            return Err(terr(format!(
                "expected a welcome, got a {:?} frame",
                frame.kind
            )));
        }
        Err(e) => return Err(terr(format!("handshake failed: {e}"))),
    }

    let mut report = WorkerReport::default();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => {
                return Err(terr("coordinator closed the connection mid-campaign"));
            }
            Err(e) => return Err(terr(format!("connection lost: {e}"))),
        };
        match frame.kind {
            FrameKind::Shutdown => {
                report.clean_exit = true;
                return Ok(report);
            }
            FrameKind::Refuse => {
                return Err(terr(format!(
                    "coordinator refused: {}",
                    frame.text().map(str::to_owned).unwrap_or_default()
                )));
            }
            FrameKind::Work => {
                if config.abandon_after.is_some_and(|n| report.completed >= n) {
                    // Test hook: vanish mid-unit, exactly like a killed
                    // process — no reply, just a dropped connection.
                    report.clean_exit = true;
                    return Ok(report);
                }
                let (index, _hash, unit) = wire::decode_work(
                    frame
                        .text()
                        .map_err(|e| terr(format!("work frame is not UTF-8: {e}")))?,
                )
                .map_err(|e| terr(format!("refusing work item: {e}")))?;

                let done = evaluate_with_heartbeats(
                    &mut stream,
                    index,
                    &unit,
                    config.cache,
                    config.inner_jobs,
                    config.heartbeat_interval,
                )?;
                match done.result {
                    Ok(result) => {
                        let entry = encode_result(&result);
                        let body = wire::encode_result_body(
                            index,
                            sea_campaign::unit_hash(&result.unit),
                            &entry,
                        );
                        if body.len() > crate::frame::MAX_FRAME_LEN as usize {
                            // An unshippable result must become a hard
                            // unit error, not a dead worker — dying here
                            // would make the coordinator re-queue the
                            // unit onto the next worker, killing the
                            // whole fleet one by one and hanging the
                            // campaign.
                            let msg = format!(
                                "result of {} bytes exceeds the {}-byte frame limit",
                                body.len(),
                                crate::frame::MAX_FRAME_LEN
                            );
                            let body = wire::encode_work_error(index, &msg);
                            write_frame(&mut stream, FrameKind::WorkError, body.as_bytes())
                                .map_err(|e| terr(format!("cannot send error report: {e}")))?;
                            continue;
                        }
                        write_frame(&mut stream, FrameKind::Result, body.as_bytes())
                            .map_err(|e| terr(format!("cannot send result: {e}")))?;
                        report.completed += 1;
                        if done.from_cache {
                            report.cache_hits += 1;
                        }
                    }
                    Err(e) => {
                        let body = wire::encode_work_error(index, &e.to_string());
                        write_frame(&mut stream, FrameKind::WorkError, body.as_bytes())
                            .map_err(|e| terr(format!("cannot send error report: {e}")))?;
                    }
                }
            }
            other => {
                return Err(terr(format!("unexpected {other:?} frame from coordinator")));
            }
        }
    }
}

/// Evaluates one unit on a helper thread while the calling thread keeps
/// the connection alive with heartbeats.
fn evaluate_with_heartbeats(
    stream: &mut TcpStream,
    index: usize,
    unit: &sea_campaign::Unit,
    cache: Option<&Cache>,
    inner_jobs: usize,
    heartbeat_interval: Duration,
) -> Result<sea_campaign::Completion, CampaignError> {
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        s.spawn(move || {
            let _ = tx.send(produce_unit(index, unit, cache, inner_jobs.max(1)));
        });
        loop {
            match rx.recv_timeout(heartbeat_interval) {
                Ok(done) => return Ok(done),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    write_frame(stream, FrameKind::Heartbeat, &[])
                        .map_err(|e| terr(format!("cannot heartbeat (coordinator gone?): {e}")))?;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(terr("unit evaluation thread died"));
                }
            }
        }
    })
}
