//! The canonical unit encoding dispatched over the wire, plus the
//! work/result/error frame bodies.
//!
//! A coordinator ships each unit to workers as *content*, not as a
//! reference: textual [`AppSpec`] workloads travel as their canonical
//! spec string, and harness-built inline applications travel fully
//! inlined (name, execution mode, deadline, every task, every edge, the
//! complete register-sharing model) — exactly the fields the unit's
//! content hash covers, so a worker can recompute
//! [`sea_campaign::unit_hash`] over the decoded unit and refuse a
//! dispatch whose hash disagrees (the cross-build drift guard; see
//! [`decode_work`]).
//!
//! The token format is [`sea_opt::codec`]'s: whitespace-separated tokens,
//! floats as 16-hex-digit IEEE-754 bit patterns. Strings are carried as
//! `x`-prefixed hex of their UTF-8 bytes so any content (spaces,
//! newlines, quotes) stays a single token.

use std::fmt::Write as _;
use std::sync::Arc;

use sea_campaign::{unit_hash, AppRef, BudgetSpec, ContentHash, Unit, UnitKind};
use sea_opt::codec::{self, CodecError, Tokens};
use sea_opt::SelectionPolicy;
use sea_taskgraph::{
    AppSpec, Application, Bits, Cycles, ExecutionMode, RegisterModelBuilder, TaskGraphBuilder,
    TaskId,
};

/// Unit-encoding version (bump on any canonical-encoding change so a
/// mixed-version fleet refuses work instead of silently misreading it).
/// v2: the `scaled` app-ref production (campaign `deadline_scale`).
pub const WIRE_VERSION: u32 = 2;

fn err(msg: impl Into<String>) -> CodecError {
    CodecError(msg.into())
}

/// Appends a string as one `x`-prefixed hex token.
fn push_str(out: &mut String, s: &str) {
    let mut tok = String::with_capacity(1 + 2 * s.len());
    tok.push('x');
    for b in s.bytes() {
        let _ = write!(tok, "{b:02x}");
    }
    codec::push_tok(out, &tok);
}

/// Parses one `x`-prefixed hex token back into a string.
fn next_str(t: &mut Tokens<'_>) -> Result<String, CodecError> {
    let tok = t.next_tok()?;
    let hex = tok
        .strip_prefix('x')
        .ok_or_else(|| err(format!("expected a string token, got `{tok}`")))?;
    if hex.len() % 2 != 0 {
        return Err(err(format!("odd-length string token `{tok}`")));
    }
    let bytes: Result<Vec<u8>, _> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
        .collect();
    let bytes = bytes.map_err(|_| err(format!("bad hex in string token `{tok}`")))?;
    String::from_utf8(bytes).map_err(|_| err(format!("non-UTF-8 string token `{tok}`")))
}

fn push_selection(out: &mut String, s: SelectionPolicy) {
    match s {
        SelectionPolicy::PowerGammaProduct => codec::push_u64(out, 0),
        SelectionPolicy::PowerFirst { tolerance } => {
            codec::push_u64(out, 1);
            codec::push_f64(out, tolerance);
        }
        SelectionPolicy::Weighted { w_power } => {
            codec::push_u64(out, 2);
            codec::push_f64(out, w_power);
        }
        SelectionPolicy::GammaFirst => codec::push_u64(out, 3),
    }
}

fn next_selection(t: &mut Tokens<'_>) -> Result<SelectionPolicy, CodecError> {
    match t.next_u64()? {
        0 => Ok(SelectionPolicy::PowerGammaProduct),
        1 => Ok(SelectionPolicy::PowerFirst {
            tolerance: t.next_f64()?,
        }),
        2 => Ok(SelectionPolicy::Weighted {
            w_power: t.next_f64()?,
        }),
        3 => Ok(SelectionPolicy::GammaFirst),
        other => Err(err(format!("unknown selection tag {other}"))),
    }
}

fn objective_keyword(o: sea_baselines::Objective) -> &'static str {
    match o {
        sea_baselines::Objective::RegisterUsage => "r",
        sea_baselines::Objective::Parallelism => "tm",
        sea_baselines::Objective::RegTimeProduct => "tmr",
    }
}

fn parse_objective(s: &str) -> Result<sea_baselines::Objective, CodecError> {
    match s {
        "r" => Ok(sea_baselines::Objective::RegisterUsage),
        "tm" => Ok(sea_baselines::Objective::Parallelism),
        "tmr" => Ok(sea_baselines::Objective::RegTimeProduct),
        other => Err(err(format!("unknown objective `{other}`"))),
    }
}

fn push_kind(out: &mut String, kind: &UnitKind) {
    match kind {
        UnitKind::Optimize => codec::push_tok(out, "optimize"),
        UnitKind::Baseline(objective) => {
            codec::push_tok(out, "baseline");
            codec::push_tok(out, objective_keyword(*objective));
        }
        UnitKind::Sweep { count, scale } => {
            codec::push_tok(out, "sweep");
            codec::push_u64(out, *count as u64);
            codec::push_u64(out, u64::from(*scale));
        }
        UnitKind::Simulate {
            scaling,
            groups,
            ser,
        } => {
            codec::push_tok(out, "simulate");
            codec::push_u64(out, scaling.len() as u64);
            for &c in scaling {
                codec::push_u64(out, u64::from(c));
            }
            codec::push_u64(out, groups.len() as u64);
            for group in groups {
                codec::push_u64(out, group.len() as u64);
                for &t in group {
                    codec::push_u64(out, t as u64);
                }
            }
            codec::push_f64(out, *ser);
        }
    }
}

fn next_kind(t: &mut Tokens<'_>) -> Result<UnitKind, CodecError> {
    match t.next_tok()? {
        "optimize" => Ok(UnitKind::Optimize),
        "baseline" => Ok(UnitKind::Baseline(parse_objective(t.next_tok()?)?)),
        "sweep" => Ok(UnitKind::Sweep {
            count: t.next_usize()?,
            scale: t.next_u8()?,
        }),
        "simulate" => {
            let n = t.next_usize()?;
            let scaling = (0..n).map(|_| t.next_u8()).collect::<Result<_, _>>()?;
            let n_groups = t.next_usize()?;
            let mut groups = Vec::with_capacity(n_groups.min(1024));
            for _ in 0..n_groups {
                let len = t.next_usize()?;
                groups.push(
                    (0..len)
                        .map(|_| t.next_usize())
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            Ok(UnitKind::Simulate {
                scaling,
                groups,
                ser: t.next_f64()?,
            })
        }
        other => Err(err(format!("unknown unit kind `{other}`"))),
    }
}

/// Canonical encoding of a full application — the same field set the
/// content hash covers, plus the graph's own name and the exact execution
/// mode (the hash only folds `iterations`).
fn push_application(out: &mut String, app: &Application) {
    push_str(out, app.name());
    match app.mode() {
        ExecutionMode::Batch => codec::push_u64(out, 0),
        ExecutionMode::Pipelined { iterations } => {
            codec::push_u64(out, 1);
            codec::push_u64(out, u64::from(iterations));
        }
    }
    codec::push_f64(out, app.deadline_s());
    let g = app.graph();
    push_str(out, g.name());
    codec::push_u64(out, g.len() as u64);
    for task in g.tasks() {
        push_str(out, task.name());
        codec::push_u64(out, task.computation().as_u64());
    }
    codec::push_u64(out, g.edges().len() as u64);
    for e in g.edges() {
        codec::push_u64(out, e.src.index() as u64);
        codec::push_u64(out, e.dst.index() as u64);
        codec::push_u64(out, e.comm.as_u64());
    }
    let m = app.registers();
    codec::push_u64(out, m.blocks().len() as u64);
    for block in m.blocks() {
        push_str(out, block.name());
        codec::push_u64(out, block.bits().as_u64());
    }
    for task_index in 0..m.n_tasks() {
        let blocks = m.task_blocks(TaskId::new(task_index));
        codec::push_u64(out, blocks.len() as u64);
        for b in blocks {
            codec::push_u64(out, b.index() as u64);
        }
    }
}

fn next_application(t: &mut Tokens<'_>) -> Result<Application, CodecError> {
    let name = next_str(t)?;
    let mode = match t.next_u64()? {
        0 => ExecutionMode::Batch,
        1 => ExecutionMode::Pipelined {
            iterations: t.next_u32()?,
        },
        other => return Err(err(format!("unknown execution-mode tag {other}"))),
    };
    let deadline_s = t.next_f64()?;
    let graph_name = next_str(t)?;
    let n_tasks = t.next_usize()?;
    let mut builder = TaskGraphBuilder::new(graph_name);
    for _ in 0..n_tasks {
        let task_name = next_str(t)?;
        builder.add_task(task_name, Cycles::new(t.next_u64()?));
    }
    let n_edges = t.next_usize()?;
    for _ in 0..n_edges {
        let src = TaskId::new(t.next_usize()?);
        let dst = TaskId::new(t.next_usize()?);
        let comm = Cycles::new(t.next_u64()?);
        builder
            .add_edge(src, dst, comm)
            .map_err(|e| err(format!("bad edge: {e}")))?;
    }
    let graph = builder
        .build()
        .map_err(|e| err(format!("bad graph: {e}")))?;
    let mut registers = RegisterModelBuilder::new(n_tasks);
    let n_blocks = t.next_usize()?;
    let mut block_ids = Vec::with_capacity(n_blocks.min(4096));
    for _ in 0..n_blocks {
        let block_name = next_str(t)?;
        block_ids.push(registers.add_block(block_name, Bits::new(t.next_u64()?)));
    }
    for task_index in 0..n_tasks {
        let n = t.next_usize()?;
        for _ in 0..n {
            let b = t.next_usize()?;
            let &id = block_ids
                .get(b)
                .ok_or_else(|| err(format!("register block {b} out of range")))?;
            registers
                .assign(TaskId::new(task_index), id)
                .map_err(|e| err(format!("bad register assignment: {e}")))?;
        }
    }
    Application::new(name, graph, registers.build(), mode, deadline_s)
        .map_err(|e| err(format!("bad application: {e}")))
}

fn push_app_ref(out: &mut String, app: &AppRef) {
    match app {
        AppRef::Spec(spec) => {
            codec::push_tok(out, "spec");
            push_str(out, &spec.to_string());
        }
        AppRef::Inline(app) => {
            codec::push_tok(out, "inline");
            push_application(out, app);
        }
        AppRef::Scaled {
            spec,
            deadline_scale,
        } => {
            codec::push_tok(out, "scaled");
            push_str(out, &spec.to_string());
            codec::push_f64(out, *deadline_scale);
        }
    }
}

fn next_app_ref(t: &mut Tokens<'_>) -> Result<AppRef, CodecError> {
    match t.next_tok()? {
        "spec" => {
            let text = next_str(t)?;
            let spec: AppSpec = text
                .parse()
                .map_err(|e| err(format!("bad app spec `{text}`: {e}")))?;
            Ok(AppRef::Spec(spec))
        }
        "inline" => Ok(AppRef::Inline(Arc::new(next_application(t)?))),
        "scaled" => {
            let text = next_str(t)?;
            let spec: AppSpec = text
                .parse()
                .map_err(|e| err(format!("bad app spec `{text}`: {e}")))?;
            Ok(AppRef::Scaled {
                spec,
                deadline_scale: t.next_f64()?,
            })
        }
        other => Err(err(format!("unknown app tag `{other}`"))),
    }
}

/// Encodes one unit canonically.
#[must_use]
pub fn encode_unit(unit: &Unit) -> String {
    let mut out = String::with_capacity(256);
    codec::push_tok(&mut out, "unit");
    codec::push_u64(&mut out, u64::from(WIRE_VERSION));
    codec::push_u64(&mut out, unit.index as u64);
    push_str(&mut out, &unit.scenario);
    push_kind(&mut out, &unit.kind);
    push_app_ref(&mut out, &unit.app);
    codec::push_u64(&mut out, unit.cores as u64);
    codec::push_u64(&mut out, unit.levels as u64);
    codec::push_tok(&mut out, unit.budget.keyword());
    push_selection(&mut out, unit.selection);
    codec::push_u64(&mut out, unit.seed);
    out
}

/// Decodes one unit.
///
/// # Errors
///
/// [`CodecError`] for malformed input, unknown tags, or a wire version
/// this build does not speak.
pub fn decode_unit(source: &str) -> Result<Unit, CodecError> {
    let mut t = Tokens::new(source);
    t.expect("unit")?;
    let version = t.next_u32()?;
    if version != WIRE_VERSION {
        return Err(err(format!(
            "unit wire version skew: stream has {version}, this build reads {WIRE_VERSION}"
        )));
    }
    let index = t.next_usize()?;
    let scenario = next_str(&mut t)?;
    let kind = next_kind(&mut t)?;
    let app = next_app_ref(&mut t)?;
    let cores = t.next_usize()?;
    let levels = t.next_usize()?;
    let budget_keyword = t.next_tok()?;
    let budget = BudgetSpec::parse(budget_keyword).map_err(|e| err(format!("bad budget: {e}")))?;
    let selection = next_selection(&mut t)?;
    let seed = t.next_u64()?;
    t.finish()?;
    Ok(Unit {
        index,
        scenario,
        kind,
        app,
        cores,
        levels,
        budget,
        selection,
        seed,
    })
}

/// Encodes a [`FrameKind::Work`](crate::frame::FrameKind::Work) body: the
/// enumeration index, the unit's content hash, and the canonical unit.
#[must_use]
pub fn encode_work(index: usize, hash: ContentHash, unit: &Unit) -> String {
    let mut out = String::with_capacity(256);
    codec::push_u64(&mut out, index as u64);
    codec::push_tok(&mut out, &hash.to_hex());
    out.push('\n');
    out.push_str(&encode_unit(unit));
    out
}

/// Decodes a work body and enforces the drift guard: the recomputed
/// content hash of the decoded unit must equal the dispatched hash, or
/// the two builds disagree on what the unit *is* and the worker must
/// refuse rather than silently compute something else.
///
/// # Errors
///
/// [`CodecError`] for malformed bodies or a hash mismatch.
pub fn decode_work(source: &str) -> Result<(usize, ContentHash, Unit), CodecError> {
    let (head, unit_src) = source
        .split_once('\n')
        .ok_or_else(|| err("work body has no unit line"))?;
    let mut t = Tokens::new(head);
    let index = t.next_usize()?;
    let hash = ContentHash::parse_hex(t.next_tok()?)
        .ok_or_else(|| err("malformed unit hash in work body"))?;
    t.finish()?;
    let unit = decode_unit(unit_src)?;
    let recomputed = unit_hash(&unit);
    if recomputed != hash {
        return Err(err(format!(
            "unit hash drift: dispatched {}, decoded unit hashes to {} — refusing the work item",
            hash.to_hex(),
            recomputed.to_hex()
        )));
    }
    Ok((index, hash, unit))
}

/// Encodes a [`FrameKind::Result`](crate::frame::FrameKind::Result)
/// body: index, unit hash, then the exact [`sea_campaign::encode_result`]
/// bytes (the cache-entry format, checksum and all).
#[must_use]
pub fn encode_result_body(index: usize, hash: ContentHash, entry: &str) -> String {
    let mut out = String::with_capacity(entry.len() + 64);
    codec::push_u64(&mut out, index as u64);
    codec::push_tok(&mut out, &hash.to_hex());
    out.push('\n');
    out.push_str(entry);
    out
}

/// Splits a result body into index, claimed unit hash and the raw entry
/// bytes. The entry itself is *not* trusted here — the coordinator
/// verifies it against the unit at `index` with
/// [`sea_campaign::decode_result`], which checks the embedded hash and
/// content checksum.
///
/// # Errors
///
/// [`CodecError`] for malformed headers.
pub fn decode_result_body(source: &str) -> Result<(usize, ContentHash, &str), CodecError> {
    let (head, entry) = source
        .split_once('\n')
        .ok_or_else(|| err("result body has no entry"))?;
    let mut t = Tokens::new(head);
    let index = t.next_usize()?;
    let hash = ContentHash::parse_hex(t.next_tok()?)
        .ok_or_else(|| err("malformed unit hash in result body"))?;
    t.finish()?;
    Ok((index, hash, entry))
}

/// Encodes a [`FrameKind::WorkError`](crate::frame::FrameKind::WorkError)
/// body: the enumeration index plus the error message.
#[must_use]
pub fn encode_work_error(index: usize, message: &str) -> String {
    let mut out = String::new();
    codec::push_u64(&mut out, index as u64);
    push_str(&mut out, message);
    out
}

/// Decodes a work-error body.
///
/// # Errors
///
/// [`CodecError`] for malformed bodies.
pub fn decode_work_error(source: &str) -> Result<(usize, String), CodecError> {
    let mut t = Tokens::new(source);
    let index = t.next_usize()?;
    let message = next_str(&mut t)?;
    t.finish()?;
    Ok((index, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_campaign::parse_campaign;

    fn sample_units() -> Vec<Unit> {
        let mut units = parse_campaign(
            "name = \"wire\"\nbudget = \"fast\"\n\
             [scenario]\nkind = \"optimize\"\napps = \"mpeg2, fig8, random:12:9\"\ncores = \"3-4\"\n\
             [scenario]\nkind = \"baseline\"\nobjectives = \"r,tm,tmr\"\napps = \"mpeg2\"\ncores = \"4\"\n\
             [scenario]\nkind = \"sweep\"\napps = \"mpeg2\"\ncores = \"4\"\ncount = 7\nscales = \"2\"\n",
        )
        .unwrap()
        .expand();
        // An inline application (harness-built workload) and a simulate
        // unit with explicit design-point structure.
        let inline = Arc::new(AppSpec::Mpeg2.build().unwrap());
        let mut u = units[0].clone();
        u.scenario = "inline scenario \"with\" quotes\nand newlines".into();
        u.app = AppRef::Inline(inline);
        u.kind = UnitKind::Simulate {
            scaling: vec![2, 2, 3, 2],
            groups: vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7], vec![8], vec![9, 10]],
            ser: 1.234e-9,
        };
        u.cores = 4;
        units.push(u);
        // A deadline-scaled workload (campaign `deadline_scale` key).
        let mut u = units[1].clone();
        u.app = AppRef::Scaled {
            spec: AppSpec::Mpeg2,
            deadline_scale: 0.4,
        };
        units.push(u);
        units
    }

    #[test]
    fn units_round_trip_with_identical_content_hashes() {
        for unit in sample_units() {
            let encoded = encode_unit(&unit);
            let back = decode_unit(&encoded).unwrap_or_else(|e| panic!("{e}: {encoded}"));
            assert_eq!(unit_hash(&unit), unit_hash(&back));
            assert_eq!(unit.index, back.index);
            assert_eq!(unit.scenario, back.scenario);
            // Stable golden form: re-encoding is byte-identical.
            assert_eq!(encoded, encode_unit(&back));
        }
    }

    #[test]
    fn inline_applications_rebuild_exactly() {
        let app = Arc::new(AppSpec::Mpeg2.build().unwrap());
        let mut out = String::new();
        push_application(&mut out, &app);
        let back = next_application(&mut Tokens::new(&out)).unwrap();
        assert_eq!(*app, back);
    }

    #[test]
    fn work_bodies_verify_the_hash_drift_guard() {
        let unit = sample_units().remove(0);
        let hash = unit_hash(&unit);
        let body = encode_work(3, hash, &unit);
        let (index, got_hash, got_unit) = decode_work(&body).unwrap();
        assert_eq!(index, 3);
        assert_eq!(got_hash, hash);
        assert_eq!(unit_hash(&got_unit), hash);
        // Flip the dispatched hash: the drift guard must refuse.
        let wrong = ContentHash(hash.0 ^ 1);
        let body = encode_work(3, wrong, &unit);
        let e = decode_work(&body).unwrap_err();
        assert!(e.to_string().contains("drift"), "{e}");
    }

    #[test]
    fn malformed_wire_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "unit",
            "unit 999 0 x",
            "unit 1 0 x optimize spec x6d70656732 4 3 fast 0", // truncated (no seed)
            "unit 1 0 x optimize spec xzz 4 3 fast 0 5",       // bad hex
            "unit 1 0 x optimize spec x6d70656732 4 3 leisurely 0 5",
            "unit 1 0 y0 optimize spec x6d70656732 4 3 fast 0 5", // bad string token
            "unit 1 0 x frobnicate",
        ] {
            assert!(decode_unit(bad).is_err(), "`{bad}`");
        }
        assert!(decode_work("no newline here").is_err());
        assert!(decode_work("notanumber deadbeef\nunit 1").is_err());
        assert!(decode_result_body("3").is_err());
        assert!(decode_work_error("3 not-a-string").is_err());

        // Deterministic mutation fuzz over a valid encoding: truncations
        // and byte flips decode or error, never panic.
        let unit = sample_units().pop().unwrap();
        let encoded = encode_unit(&unit);
        for cut in 0..encoded.len() {
            let _ = decode_unit(&encoded[..cut]);
        }
        let mut state = 0xD15Cu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let bytes = encoded.as_bytes();
        for _ in 0..500 {
            let mut mutated = bytes.to_vec();
            let pos = (next() as usize) % mutated.len();
            mutated[pos] = (next() & 0x7F) as u8; // keep it UTF-8
            if let Ok(text) = std::str::from_utf8(&mutated) {
                let _ = decode_unit(text);
            }
        }
    }

    #[test]
    fn work_error_bodies_round_trip() {
        let body = encode_work_error(7, "scheduler exploded: \"cycle\"\nsecond line");
        let (index, message) = decode_work_error(&body).unwrap();
        assert_eq!(index, 7);
        assert!(message.contains("second line"));
    }
}
