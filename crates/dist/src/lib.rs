//! Distributed campaign execution over TCP: a coordinator fans unit work
//! items across any number of connecting workers.
//!
//! The campaign layer made every unit location-transparent: a [`Unit`] is
//! a pure function of its own fields, its identity is a stable content
//! hash ([`sea_campaign::unit_hash`]), and a completed result has a
//! bitwise-exact wire encoding ([`sea_campaign::encode_result`], the same
//! bytes the result cache stores). Scaling out is therefore pure
//! transport work, and this crate is that transport — hand-rolled on
//! `std::net::{TcpListener, TcpStream}`, zero external dependencies:
//!
//! * [`frame`] — a length-prefixed, versioned frame protocol. Torn
//!   frames, oversized lengths and garbage bytes are rejected with
//!   errors, never panics.
//! * [`wire`] — the canonical unit encoding dispatched to workers
//!   (including fully inlined applications for harness-built workloads)
//!   and the work/result frame bodies.
//! * [`coordinator`] — [`serve_units`] drives
//!   the same [`sea_campaign::RunState`] unit-source/result-slot machine
//!   as the in-process thread pool: results slot by enumeration index,
//!   stream to the sink in completion order, and append to the
//!   write-ahead journal exactly once — so final reports are
//!   **byte-identical** to a local `--jobs N` run for any worker count,
//!   join/leave order or network interleaving. Worker disconnects and
//!   heartbeat timeouts re-queue in-flight units; `--resume` journals and
//!   the shared result cache work across the network boundary.
//! * [`worker`] — [`run_worker`] connects, evaluates
//!   dispatched units through the exact
//!   [`sea_campaign::produce_unit`] path the thread-pool workers run
//!   (cache probe, evaluation, cache publication), and streams results
//!   back while heartbeating.
//!
//! [`run_distributed_local`] wires a localhost coordinator to N
//! in-process workers — the smoke path `reproduce --distributed` and the
//! integration tests use.
//!
//! [`Unit`]: sea_campaign::Unit

pub mod coordinator;
pub mod frame;
pub mod wire;
pub mod worker;

pub use coordinator::{serve_units, ServeConfig};
pub use worker::{run_worker, WorkerConfig, WorkerReport};

use std::net::TcpListener;

use sea_campaign::{CampaignError, RunConfig, RunOutcome, Sink, Unit};

/// Builds the [`CampaignError::Transport`] this crate reports with.
pub(crate) fn terr(msg: impl Into<String>) -> CampaignError {
    CampaignError::Transport(msg.into())
}

/// Socket options every dispatch connection runs with, applied by the
/// coordinator on accept and the worker on connect. `TCP_NODELAY` is
/// essential here: the protocol exchanges small Work/Result/Heartbeat
/// frames in a strict request/response rhythm, exactly the pattern
/// Nagle's algorithm holds back a round-trip at a time.
///
/// # Errors
///
/// Propagates the `setsockopt` failure.
pub fn configure_stream(stream: &std::net::TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)
}

/// Runs `units` through a localhost coordinator plus `workers` in-process
/// TCP workers — the full network path on one machine. The coordinator
/// owns the persistence configuration (`config.cache` is probed before
/// dispatch and published to on receipt; `config.prefilled`/`journal`
/// resume across the network boundary); `config.jobs` is handed to each
/// worker as its inner job count. The outcome — and every report rendered
/// from it — is byte-identical to [`sea_campaign::run_units_configured`]
/// on the same configuration.
///
/// # Errors
///
/// Propagates coordinator errors: transport failures, journal-append
/// failures, and the first (by enumeration index) hard unit error.
pub fn run_distributed_local(
    units: &[Unit],
    config: RunConfig<'_>,
    workers: usize,
    sink: &mut dyn Sink,
) -> Result<RunOutcome, CampaignError> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| terr(format!("cannot bind a localhost coordinator: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| terr(format!("cannot resolve the coordinator address: {e}")))?;
    let inner_jobs = config.jobs.max(1);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(move || {
                let worker_config = WorkerConfig {
                    inner_jobs,
                    ..WorkerConfig::default()
                };
                // A worker that loses its connection mid-campaign is the
                // coordinator's problem (it re-queues); nothing to do here.
                let _ = run_worker(&addr.to_string(), &worker_config);
            });
        }
        let result = serve_units(&listener, units, ServeConfig::new(config), sink);
        // A fully-probed (warm-cache or fully-prefilled) campaign returns
        // without ever accepting: connections then sit in the listen
        // backlog with workers awaiting a welcome. Closing the listener
        // resets them so the workers unblock and the scope can join.
        drop(listener);
        result
    })
}
