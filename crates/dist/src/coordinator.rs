//! The coordinator: listens on TCP, fans unit work items to connecting
//! workers, and merges results with the campaign engine's
//! enumeration-order discipline.
//!
//! [`serve_units`] drives the exact same [`RunState`] unit-source /
//! result-slot machine as the in-process thread pool
//! ([`sea_campaign::run_units_configured`]), so the two backends cannot
//! drift: the prefill/cache/journal decision is made once
//! ([`RunState::plan`]), results slot by enumeration index, the sink
//! streams completions in completion order, and the final report is
//! byte-identical to a local `--jobs N` run for any worker count, any
//! join/leave order and any network interleaving.
//!
//! Failure handling:
//!
//! * **Disconnect mid-unit** — the worker's in-flight unit is re-queued
//!   and dispatched to the next available worker; slotting by index makes
//!   the merge discipline indifferent to who finally computes it. If the
//!   "dead" worker turns out alive and delivers late, the duplicate is
//!   ignored ([`RunState::complete`] keeps the first completion).
//! * **Heartbeat timeout** — workers heartbeat while evaluating; a worker
//!   holding a unit that stays silent past the configured timeout is
//!   disconnected and its unit re-queued. Idle workers may be silent
//!   indefinitely (they hold no work).
//! * **Result verification** — every result is decoded against the unit
//!   at its index: the embedded content hash must equal the dispatched
//!   unit's hash and the entry checksum must hold
//!   ([`sea_campaign::decode_result`]), so a corrupt or mismatched stream
//!   re-queues the unit instead of poisoning the report.
//! * **Cache & journal** — the shared result cache is consulted
//!   *coordinator-side before dispatch* (a hit completes the unit without
//!   any network traffic) and published to as verified results arrive;
//!   the write-ahead journal records completions exactly as the local
//!   engine does, so `--resume` works across the network boundary.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sea_campaign::{
    decode_result, dispatch_order, unit_hash, CampaignError, Completion, RunConfig, RunOutcome,
    RunState, Sink, Unit,
};

use crate::frame::{check_handshake, handshake_line, read_frame, write_frame, Frame, FrameKind};
use crate::terr;
use crate::wire;

/// Coordinator configuration.
pub struct ServeConfig<'a> {
    /// The persistence configuration the local engine would run with.
    /// `run.jobs` is not used by the coordinator (workers bring their own
    /// capacity); `run.cache` is probed before dispatch and published to
    /// on receipt; `run.prefilled`/`run.journal` resume across the
    /// network.
    pub run: RunConfig<'a>,
    /// How long a worker holding an in-flight unit may stay completely
    /// silent before it is presumed dead and its unit re-queued. Workers
    /// heartbeat every ~2 s while evaluating, so this bounds detection
    /// latency, not unit duration.
    pub heartbeat_timeout: Duration,
}

impl<'a> ServeConfig<'a> {
    /// Wraps a [`RunConfig`] with the default 30 s heartbeat timeout.
    #[must_use]
    pub fn new(run: RunConfig<'a>) -> Self {
        ServeConfig {
            run,
            heartbeat_timeout: Duration::from_secs(30),
        }
    }
}

/// Events the listener/reader threads feed the dispatch loop.
enum Event {
    /// A connection was accepted; the stream is the write half.
    Connected(u64, TcpStream),
    /// A frame arrived from a connected peer.
    Frame(u64, Frame),
    /// The peer's connection ended (clean close, reset, torn frame).
    Gone(u64),
}

/// Per-connection coordinator state.
struct Peer {
    stream: TcpStream,
    /// Handshake completed (Hello received, Welcome sent).
    greeted: bool,
    /// Enumeration index this worker is evaluating, if any.
    in_flight: Option<usize>,
    /// Last frame of any kind (heartbeats included).
    last_seen: Instant,
}

/// Runs a campaign's unit list through TCP workers connecting to
/// `listener`, streaming completions to `sink`.
///
/// Blocks until every unit has a verified result (workers may join and
/// leave freely; the coordinator waits for capacity rather than failing
/// when none is connected) or until a journal append fails. Outcomes are
/// in enumeration order — every report rendered from them is
/// byte-identical to [`sea_campaign::run_units_configured`] on the same
/// configuration.
///
/// # Errors
///
/// Transport setup failures, journal-append failures, and the first (by
/// enumeration index) hard unit error reported by a worker — after all
/// other units have completed, exactly like the local engine.
pub fn serve_units(
    listener: &TcpListener,
    units: &[Unit],
    config: ServeConfig<'_>,
    sink: &mut dyn Sink,
) -> Result<RunOutcome, CampaignError> {
    let ServeConfig {
        run,
        heartbeat_timeout,
    } = config;
    let RunConfig {
        jobs: _,
        cache,
        prefilled,
        need_payloads,
        journal,
    } = run;

    let local_addr = listener
        .local_addr()
        .map_err(|e| terr(format!("cannot resolve the coordinator address: {e}")))?;
    let mut state = RunState::plan(units, prefilled, need_payloads, journal);
    sink.begin(state.pending().len());

    // Coordinator-side cache probe: a hit completes the unit before any
    // dispatch, so a warm cache needs zero network traffic (and zero
    // connected workers).
    let mut misses: Vec<usize> = Vec::with_capacity(state.pending().len());
    let mut halted = false;
    for &i in &state.pending().to_vec() {
        let hit = cache.and_then(|c| c.load(&units[i]));
        match hit {
            Some(result) => {
                let done = Completion {
                    index: i,
                    result: Ok(result),
                    from_cache: true,
                };
                if !state.complete(done, sink) {
                    halted = true;
                    break;
                }
            }
            None => misses.push(i),
        }
    }
    // Most-expensive-first dispatch, the same cost model as the local
    // pool: the straggler that bounds the fleet's makespan starts first.
    // Results slot by enumeration index, so the order never changes a
    // report.
    let mut queue: VecDeque<usize> = dispatch_order(units, &misses).into();

    if state.outstanding() == 0 || halted {
        return state.finish(sink);
    }

    let stop = AtomicBool::new(false);
    // Every *live* connection's stream, registered by the listener thread
    // before its reader spawns and unregistered by the reader on exit:
    // the teardown sweep shuts the survivors down so readers blocked in
    // `read` unblock and the scope can join, while finished connections
    // release their descriptors immediately (worker churn must not
    // accumulate dead fds over a long campaign).
    let accepted: Mutex<HashMap<u64, TcpStream>> = Mutex::new(HashMap::new());
    let (tx, rx) = mpsc::channel::<Event>();

    std::thread::scope(|s| {
        let listener_tx = tx.clone();
        let stop_ref = &stop;
        let accepted_ref = &accepted;
        let listener_handle = s.spawn(move || {
            let tx = listener_tx;
            let mut next_id = 0u64;
            loop {
                let Ok((stream, _addr)) = listener.accept() else {
                    break;
                };
                if stop_ref.load(Ordering::SeqCst) {
                    break; // the teardown wake-up (or a post-completion join)
                }
                // Nagle would hold each small Work/Result/Heartbeat frame
                // back a round-trip; a socket that cannot take the option
                // is not worth a connection slot.
                if crate::configure_stream(&stream).is_err() {
                    continue;
                }
                let id = next_id;
                next_id += 1;
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                accepted_ref.lock().unwrap().insert(id, write_half);
                let Ok(write_half) = stream.try_clone() else {
                    accepted_ref.lock().unwrap().remove(&id);
                    continue;
                };
                if tx.send(Event::Connected(id, write_half)).is_err() {
                    break;
                }
                let tx = tx.clone();
                s.spawn(move || {
                    let mut stream = stream;
                    loop {
                        match read_frame(&mut stream) {
                            Ok(frame) => {
                                if tx.send(Event::Frame(id, frame)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                let _ = tx.send(Event::Gone(id));
                                break;
                            }
                        }
                    }
                    // This connection is finished: release its registry
                    // entry (and descriptor) now rather than at teardown.
                    accepted_ref.lock().unwrap().remove(&id);
                });
            }
        });

        let result = dispatch_loop(
            units,
            &mut state,
            sink,
            cache,
            &mut queue,
            &rx,
            heartbeat_timeout,
        );

        // Teardown: stop accepting, wake the listener, and shut every
        // accepted stream down so blocked readers unblock. A listener
        // bound to the unspecified address (0.0.0.0/[::]) is woken via
        // loopback — connecting *to* the unspecified address is not
        // portable.
        stop.store(true, Ordering::SeqCst);
        let mut wake_addr = local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake_addr);
        let _ = listener_handle.join();
        for stream in accepted.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        drop(tx);

        result?;
        state.finish(sink)
    })
}

/// Sends a frame to a peer; a failed write means the peer is gone.
fn send(peer: &mut Peer, kind: FrameKind, body: &[u8]) -> bool {
    write_frame(&mut peer.stream, kind, body).is_ok()
}

/// Dispatches the next queued unit (skipping ones completed meanwhile) to
/// `peer`. Returns `false` if the write failed (caller re-queues).
fn dispatch(
    units: &[Unit],
    state: &RunState,
    queue: &mut VecDeque<usize>,
    peer: &mut Peer,
) -> bool {
    while let Some(i) = queue.pop_front() {
        if state.is_filled(i) {
            continue;
        }
        let body = wire::encode_work(i, unit_hash(&units[i]), &units[i]);
        if send(peer, FrameKind::Work, body.as_bytes()) {
            peer.in_flight = Some(i);
            peer.last_seen = Instant::now();
        } else {
            queue.push_front(i);
            return false;
        }
        return true;
    }
    true
}

/// The coordinator's event loop: runs until every unit has completed or a
/// journal append fails.
#[allow(clippy::too_many_lines)]
fn dispatch_loop(
    units: &[Unit],
    state: &mut RunState,
    sink: &mut dyn Sink,
    cache: Option<&sea_campaign::Cache>,
    queue: &mut VecDeque<usize>,
    rx: &mpsc::Receiver<Event>,
    heartbeat_timeout: Duration,
) -> Result<(), CampaignError> {
    let mut peers: HashMap<u64, Peer> = HashMap::new();
    let tick = heartbeat_timeout
        .min(Duration::from_secs(1))
        .max(Duration::from_millis(50));

    // Removes one peer: close its stream and re-queue its in-flight unit.
    // The single place that forgets a connection, so the re-queue rule
    // cannot drift between callers.
    fn remove_peer(
        peers: &mut HashMap<u64, Peer>,
        id: u64,
        state: &RunState,
        queue: &mut VecDeque<usize>,
    ) {
        if let Some(peer) = peers.remove(&id) {
            let _ = peer.stream.shutdown(Shutdown::Both);
            if let Some(i) = peer.in_flight {
                if !state.is_filled(i) {
                    queue.push_front(i);
                }
            }
        }
    }

    // Drops a peer, then feeds idle workers — the re-queued unit may be
    // the only work left while another worker idles.
    fn drop_peer(
        peers: &mut HashMap<u64, Peer>,
        id: u64,
        units: &[Unit],
        state: &RunState,
        queue: &mut VecDeque<usize>,
    ) {
        remove_peer(peers, id, state, queue);
        feed_idle(peers, units, state, queue);
    }

    /// Gives queued work to every greeted, idle peer.
    fn feed_idle(
        peers: &mut HashMap<u64, Peer>,
        units: &[Unit],
        state: &RunState,
        queue: &mut VecDeque<usize>,
    ) {
        let mut dead: Vec<u64> = Vec::new();
        // Deterministic-ish order keeps behavior reproducible in tests;
        // correctness does not depend on it.
        let mut ids: Vec<u64> = peers.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if queue.is_empty() {
                break;
            }
            let peer = peers.get_mut(&id).expect("peer present");
            if peer.greeted && peer.in_flight.is_none() && !dispatch(units, state, queue, peer) {
                dead.push(id);
            }
        }
        for id in dead {
            remove_peer(peers, id, state, queue);
        }
    }

    // The stale sweep must run on schedule even when the event channel is
    // never idle (a large fleet heartbeats often enough that
    // `recv_timeout` would practically never time out), so it is clocked
    // by its own deadline, checked after every loop iteration.
    let mut last_sweep = Instant::now();
    while state.outstanding() > 0 {
        match rx.recv_timeout(tick) {
            Ok(Event::Connected(id, stream)) => {
                peers.insert(
                    id,
                    Peer {
                        stream,
                        greeted: false,
                        in_flight: None,
                        last_seen: Instant::now(),
                    },
                );
            }
            Ok(Event::Frame(id, frame)) => {
                let Some(peer) = peers.get_mut(&id) else {
                    continue; // already dropped
                };
                peer.last_seen = Instant::now();
                match (peer.greeted, frame.kind) {
                    (false, FrameKind::Hello) => match check_handshake(&frame.body) {
                        Ok(()) => {
                            peer.greeted = true;
                            if !send(peer, FrameKind::Welcome, handshake_line().as_bytes())
                                || !dispatch(units, state, queue, peer)
                            {
                                drop_peer(&mut peers, id, units, state, queue);
                            }
                        }
                        Err(reason) => {
                            let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                            drop_peer(&mut peers, id, units, state, queue);
                        }
                    },
                    (true, FrameKind::Heartbeat) => {}
                    (true, FrameKind::Result) => {
                        let accepted = handle_result(units, state, sink, cache, peer, &frame);
                        match accepted {
                            ResultDisposition::Accepted => {
                                if !dispatch(units, state, queue, peer) {
                                    drop_peer(&mut peers, id, units, state, queue);
                                }
                            }
                            ResultDisposition::Halt => return Ok(()),
                            ResultDisposition::Corrupt(reason) => {
                                // Unverifiable bytes: refuse the worker and
                                // re-queue its unit for someone else.
                                let _ = send(peer, FrameKind::Refuse, reason.as_bytes());
                                drop_peer(&mut peers, id, units, state, queue);
                            }
                        }
                    }
                    (true, FrameKind::WorkError) => {
                        match wire::decode_work_error(frame.text().unwrap_or("")) {
                            Ok((index, message))
                                if peer.in_flight == Some(index) && index < units.len() =>
                            {
                                peer.in_flight = None;
                                let done = Completion {
                                    index,
                                    result: Err(terr(format!(
                                        "worker reported unit {index} failed: {message}"
                                    ))),
                                    from_cache: false,
                                };
                                if !state.complete(done, sink) {
                                    return Ok(());
                                }
                                if !dispatch(units, state, queue, peer) {
                                    drop_peer(&mut peers, id, units, state, queue);
                                }
                            }
                            _ => drop_peer(&mut peers, id, units, state, queue),
                        }
                    }
                    // Anything else is a protocol violation.
                    _ => {
                        let _ = send(
                            peer,
                            FrameKind::Refuse,
                            format!("unexpected {:?} frame", frame.kind).as_bytes(),
                        );
                        drop_peer(&mut peers, id, units, state, queue);
                    }
                }
            }
            Ok(Event::Gone(id)) => drop_peer(&mut peers, id, units, state, queue),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The listener thread holds a sender for the lifetime of
                // the loop; this cannot happen before teardown.
                return Err(terr("coordinator event channel closed unexpectedly"));
            }
        }
        if last_sweep.elapsed() >= tick {
            last_sweep = Instant::now();
            // Presume workers holding work silent past the timeout dead;
            // idle workers owe no liveness.
            let now = Instant::now();
            let stale: Vec<u64> = peers
                .iter()
                .filter(|(_, p)| {
                    p.in_flight.is_some() && now.duration_since(p.last_seen) > heartbeat_timeout
                })
                .map(|(&id, _)| id)
                .collect();
            for id in stale {
                drop_peer(&mut peers, id, units, state, queue);
            }
        }
    }

    // Campaign complete: release every worker cleanly.
    for peer in peers.values_mut() {
        let _ = send(peer, FrameKind::Shutdown, &[]);
    }
    Ok(())
}

/// What became of one Result frame.
enum ResultDisposition {
    /// Verified and slotted (or a late duplicate, ignored).
    Accepted,
    /// A journal append failed; the run must halt.
    Halt,
    /// The bytes could not be verified against the dispatched unit.
    Corrupt(String),
}

fn handle_result(
    units: &[Unit],
    state: &mut RunState,
    sink: &mut dyn Sink,
    cache: Option<&sea_campaign::Cache>,
    peer: &mut Peer,
    frame: &Frame,
) -> ResultDisposition {
    let text = match frame.text() {
        Ok(t) => t,
        Err(e) => return ResultDisposition::Corrupt(e.to_string()),
    };
    // NOTE: `peer.in_flight` is cleared only once the result verifies.
    // Every `Corrupt` return leaves it set, so the subsequent
    // `drop_peer` re-queues the unit — a corrupt stream must cost a
    // connection, never a unit.
    let (index, claimed, entry) = match wire::decode_result_body(text) {
        Ok(parts) => parts,
        Err(e) => return ResultDisposition::Corrupt(e.to_string()),
    };
    if index >= units.len() {
        return ResultDisposition::Corrupt(format!("result index {index} out of range"));
    }
    // A connected worker may only answer the unit it was dispatched — a
    // result for any other index (replayed frame, buggy or hostile
    // worker) would otherwise leave the real in-flight unit untracked:
    // neither queued, nor held, nor filled, hanging the campaign.
    if peer.in_flight != Some(index) {
        return ResultDisposition::Corrupt(format!(
            "result for unit {index} but unit {:?} was dispatched to this worker",
            peer.in_flight
        ));
    }
    if state.is_filled(index) {
        // Filled meanwhile (cannot normally happen for a connected peer —
        // re-queues imply its disconnection — but harmless to tolerate).
        peer.in_flight = None;
        return ResultDisposition::Accepted;
    }
    let expected = unit_hash(&units[index]);
    if claimed != expected {
        return ResultDisposition::Corrupt(format!(
            "result for unit {index} claims hash {}, dispatched {}",
            claimed.to_hex(),
            expected.to_hex()
        ));
    }
    // Full verification: embedded hash + content checksum + payload decode
    // against the coordinator's own unit.
    let result = match decode_result(entry, &units[index]) {
        Ok(r) => r,
        Err(e) => return ResultDisposition::Corrupt(format!("unverifiable result: {e}")),
    };
    peer.in_flight = None;
    if let Some(cache) = cache {
        // Best-effort publication, exactly like the local engine's
        // workers: a full disk must not fail the campaign.
        let _ = cache.store(&result);
    }
    let done = Completion {
        index,
        result: Ok(result),
        from_cache: false,
    };
    if state.complete(done, sink) {
        ResultDisposition::Accepted
    } else {
        ResultDisposition::Halt
    }
}
