//! Command-line interface for the `sea-dse` binary.
//!
//! The parser is hand-rolled (no external dependency) and fully
//! unit-tested; `src/main.rs` is a thin wrapper that dispatches a parsed
//! [`Command`].
//!
//! ```text
//! sea-dse optimize  --app mpeg2 --cores 4 [--levels 2|3|4] [--budget fast|paper]
//!                   [--seed N] [--selection product|power|gamma] [--csv]
//! sea-dse baseline  --objective r|tm|tmr --app <spec> --cores N [...]
//! sea-dse simulate  --app <spec> --cores N --scaling 2,2,3,2
//!                   --groups "0,1,2|3|4,5" [--ser 1e-9] [--seed N]
//! sea-dse sweep     --app <spec> --cores N [--count 120] [--scale 1] [--csv]
//! sea-dse generate  --tasks N [--seed N] [--dot]
//! sea-dse recovery  --app <spec> --cores N --scaling ... --groups ...
//!                   --policy none|reexec:<coverage>|ckpt:<coverage>:<interval>:<save>
//! sea-dse campaign  --spec <file> | --builtin <name> | --list-builtin
//!                   [--jobs N] [--format human|csv|jsonl] [--budget fast|smoke|paper|thorough]
//! sea-dse serve     --spec <file> | --builtin <name>  --listen <addr:port>
//!                   [--format ...] [--budget ...] [--resume <journal>]
//!                   [--cache <dir>] [--timeout <secs>]
//! sea-dse worker    --connect <addr:port> [--jobs N] [--cache <dir>] [--retry <secs>]
//! sea-dse cache     stats|verify|prune [--dir <dir>] [--max-age-days D]
//!                   [--max-size-mib M] [--delete-corrupt]
//! ```
//!
//! Application specs (`mpeg2`, `fig8`, `random:<tasks>[:<seed>]`) parse
//! through the shared [`sea_taskgraph::spec`] grammar, so the CLI and
//! campaign files accept exactly the same strings. Every flag may be
//! given at most once — duplicates are rejected rather than silently
//! last-wins.

use std::fmt;

use crate::arch::LevelSet;
use sea_campaign::BudgetSpec;

/// Re-exported from the shared spec module ([`sea_taskgraph::spec`]): the
/// application selector the CLI and campaign grammar both consume.
pub use crate::taskgraph::spec::AppSpec;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the proposed optimization.
    Optimize(OptimizeArgs),
    /// Run a soft error-unaware baseline.
    Baseline(BaselineArgs),
    /// Simulate one explicit design point with fault injection.
    Simulate(DesignArgs),
    /// Random-mapping sweep (Fig. 3 style).
    Sweep(SweepArgs),
    /// Generate a random workload and print it.
    Generate(GenerateArgs),
    /// Recovery analysis of one design point.
    Recovery(RecoveryArgs),
    /// Run (or list) declarative multi-scenario campaigns.
    Campaign(CampaignArgs),
    /// Offline campaign analytics from persisted artifacts.
    Report(ReportArgs),
    /// Coordinate a campaign over TCP: fan units to connecting workers.
    Serve(ServeArgs),
    /// Serve a coordinator as a worker: evaluate dispatched units.
    Worker(WorkerArgs),
    /// Run the multi-campaign coordinator daemon.
    Daemon(DaemonArgs),
    /// Submit a campaign spec to a running daemon.
    Submit(SubmitArgs),
    /// Query a running daemon's progress and fleet stats.
    Status(ConnectArgs),
    /// Cancel one campaign on a running daemon.
    Cancel(CancelArgs),
    /// Stop a running daemon cleanly.
    Stop(ConnectArgs),
    /// Maintain a result-cache directory (stats, verify, prune).
    CacheCmd(CacheArgs),
    /// Print usage.
    Help,
}

/// `serve` command arguments: a campaign source plus the listen address
/// and the same report/persistence flags as `campaign`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Path to a campaign spec file (`--spec`).
    pub spec_path: Option<String>,
    /// Name of a built-in campaign (`--builtin`).
    pub builtin: Option<String>,
    /// TCP listen address (`--listen`, e.g. `127.0.0.1:7411`; port 0
    /// binds an ephemeral port, printed to stderr).
    pub listen: String,
    /// Final-report format.
    pub format: OutputFormat,
    /// Overrides the campaign's budget.
    pub budget: Option<BudgetSpec>,
    /// Write-ahead journal path (`--resume`), exactly as on `campaign`.
    pub resume: Option<String>,
    /// Result-cache directory (`--cache`/`SEA_CACHE`), probed
    /// coordinator-side before dispatch.
    pub cache_dir: Option<String>,
    /// Heartbeat timeout in seconds (`--timeout`): a worker holding a
    /// unit silent this long is presumed dead and its unit re-queued.
    pub timeout_s: u64,
}

/// `worker` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// Coordinator address (`--connect`, e.g. `127.0.0.1:7411`).
    pub connect: String,
    /// Worker threads for each unit's own scaling enumeration (`--jobs`;
    /// results are identical for every value).
    pub jobs: Option<usize>,
    /// Worker-side result cache (`--cache`/`SEA_CACHE`).
    pub cache_dir: Option<String>,
    /// Keep retrying the initial connect for this many seconds
    /// (`--retry`; workers often start before their coordinator).
    pub retry_s: u64,
}

/// `daemon` command arguments: the multi-campaign coordinator service.
/// Campaigns arrive over the wire (`submit`), so there is no spec
/// source here — only the listen address and fleet-wide persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonArgs {
    /// TCP listen address (`--listen`; port 0 binds an ephemeral port,
    /// printed to stderr).
    pub listen: String,
    /// Fleet-wide result-cache directory (`--cache`/`SEA_CACHE`),
    /// probed daemon-side before dispatch.
    pub cache_dir: Option<String>,
    /// Directory for per-campaign write-ahead journals
    /// (`--journal-dir`): each accepted campaign journals to
    /// `<spec-hash>.jsonl` there, and a re-submitted spec resumes from
    /// its journal after a daemon restart.
    pub journal_dir: Option<String>,
    /// Heartbeat timeout in seconds (`--timeout`), as on `serve`.
    pub timeout_s: u64,
}

/// `submit` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Daemon address (`--connect`).
    pub connect: String,
    /// Path to a campaign spec file (`--spec`).
    pub spec_path: Option<String>,
    /// Name of a built-in campaign (`--builtin`).
    pub builtin: Option<String>,
    /// Stay connected and stream the campaign (`--watch`): records to
    /// stderr as they complete, the final report alone to stdout.
    pub watch: bool,
}

/// Arguments for daemon verbs that only need an address (`status`,
/// `stop`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectArgs {
    /// Daemon address (`--connect`).
    pub connect: String,
}

/// `cancel` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CancelArgs {
    /// Daemon address (`--connect`).
    pub connect: String,
    /// Campaign id to cancel (`--id`, as printed by `submit`/`status`).
    pub id: u64,
}

/// `cache` maintenance actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Entry/byte/kind counts.
    Stats,
    /// Re-checksum every entry; report (and optionally delete) corrupt
    /// ones.
    Verify,
    /// Delete entries by age and/or total size.
    Prune,
}

/// `cache` command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheArgs {
    /// What to do.
    pub action: CacheAction,
    /// Cache directory (`--dir`; falls back to `SEA_CACHE`).
    pub dir: Option<String>,
    /// `prune`: delete entries older than this many days (`--max-age-days`).
    pub max_age_days: Option<f64>,
    /// `prune`: delete oldest entries until at most this many MiB remain
    /// (`--max-size-mib`).
    pub max_size_mib: Option<u64>,
    /// `verify`: delete entries that fail validation (`--delete-corrupt`).
    pub delete_corrupt: bool,
}

/// Campaign command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArgs {
    /// Path to a campaign spec file (`--spec`).
    pub spec_path: Option<String>,
    /// Name of a built-in campaign (`--builtin`).
    pub builtin: Option<String>,
    /// List the built-in campaigns and exit (`--list-builtin`).
    pub list_builtin: bool,
    /// Worker threads for the campaign pool (`None` = `SEA_JOBS`, else
    /// available parallelism). Final reports are identical for every
    /// value.
    pub jobs: Option<usize>,
    /// Final-report format.
    pub format: OutputFormat,
    /// Overrides the campaign's budget (including per-scenario
    /// overrides).
    pub budget: Option<BudgetSpec>,
    /// Write-ahead journal path (`--resume`): created when absent,
    /// resumed when present — completed units are restored, only the
    /// missing ones run.
    pub resume: Option<String>,
    /// Content-addressed result-cache directory (`--cache`; falls back
    /// to the `SEA_CACHE` environment variable when omitted).
    pub cache_dir: Option<String>,
    /// Append the aggregate sections (win rates, Pareto fronts, best
    /// designs, cross-seed spread) after the per-unit report
    /// (`--report-aggregates`).
    pub report_aggregates: bool,
}

/// `report` command arguments: offline analytics over a persisted
/// artifact — a `--resume` journal file or a `--cache` directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The artifact: a journal file or a cache directory (positional).
    pub source: String,
    /// Report format, exactly as on `campaign`.
    pub format: OutputFormat,
}

/// `--format` values for campaign reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned ASCII table (the default).
    #[default]
    Human,
    /// CSV (header + one row per unit).
    Csv,
    /// JSON Lines (one object per unit).
    Jsonl,
}

/// `--selection` values: which [`sea_opt::SelectionPolicy`] the optimizer
/// uses for its iterative assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionSpec {
    /// The library default: joint `P·Γ` product (`product`, or omitted).
    #[default]
    Default,
    /// Power-first with the 5 % tolerance band (`power`).
    Power,
    /// Γ-first (`gamma`).
    Gamma,
}

/// Arguments shared by the optimizing commands.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeArgs {
    /// Application specification.
    pub app: AppSpec,
    /// Core count.
    pub cores: usize,
    /// DVS levels (2, 3 or 4).
    pub levels: usize,
    /// `fast` or `paper` search budget.
    pub paper_budget: bool,
    /// Search seed.
    pub seed: u64,
    /// Selection policy of the iterative assessment.
    pub selection: SelectionSpec,
    /// Worker threads for the scaling enumeration (`None` = the engine's
    /// default: the `SEA_JOBS` env var, else available parallelism).
    /// Results are identical for every value; only wall-clock changes.
    pub jobs: Option<usize>,
    /// Emit CSV instead of human-readable text.
    pub csv: bool,
}

/// Baseline command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineArgs {
    /// Shared optimization arguments.
    pub common: OptimizeArgs,
    /// Objective: `r`, `tm` or `tmr`.
    pub objective: BaselineObjective,
}

/// Baseline objective selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineObjective {
    /// Minimize register usage (Exp:1).
    R,
    /// Minimize execution time (Exp:2).
    Tm,
    /// Minimize the product (Exp:3).
    TmR,
}

/// An explicit design point on the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignArgs {
    /// Application specification.
    pub app: AppSpec,
    /// Core count.
    pub cores: usize,
    /// Per-core scaling coefficients.
    pub scaling: Vec<u8>,
    /// Per-core task groups (0-based task indices).
    pub groups: Vec<Vec<usize>>,
    /// Raw SER (λ_ref), SEU/bit/cycle.
    pub ser: f64,
    /// Injection seed.
    pub seed: u64,
}

/// Sweep command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Application specification.
    pub app: AppSpec,
    /// Core count.
    pub cores: usize,
    /// Number of random mappings.
    pub count: usize,
    /// Uniform scaling coefficient.
    pub scale: u8,
    /// Sweep seed.
    pub seed: u64,
    /// Emit CSV.
    pub csv: bool,
}

/// Generate command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Task count.
    pub tasks: usize,
    /// Generator seed.
    pub seed: u64,
    /// Emit Graphviz DOT instead of a summary.
    pub dot: bool,
}

/// Recovery command arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryArgs {
    /// The design point.
    pub design: DesignArgs,
    /// Recovery policy specification.
    pub policy: PolicySpec,
}

/// Parsed recovery policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// No recovery.
    None,
    /// Re-execution with the given detection coverage.
    ReExec {
        /// Detection coverage in `0..=1`.
        coverage: f64,
    },
    /// Checkpointing.
    Checkpoint {
        /// Detection coverage in `0..=1`.
        coverage: f64,
        /// Interval in seconds.
        interval_s: f64,
        /// Save cost in seconds.
        save_s: f64,
    },
}

/// A CLI parse/validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text printed by `sea-dse help`.
pub const USAGE: &str = "\
sea-dse - soft error-aware design optimization (DATE 2010 reproduction)

USAGE:
  sea-dse optimize  --app <spec> --cores <N> [--levels 2|3|4] [--budget fast|paper]
                    [--seed <N>] [--selection product|power|gamma] [--jobs <N>] [--csv]
  sea-dse baseline  --objective r|tm|tmr --app <spec> --cores <N> [...optimize flags]
  sea-dse simulate  --app <spec> --cores <N> --scaling <s1,s2,...>
                    --groups <g0|g1|...> [--ser <rate>] [--seed <N>]
  sea-dse sweep     --app <spec> --cores <N> [--count <M>] [--scale <s>] [--seed <N>] [--csv]
  sea-dse generate  --tasks <N> [--seed <N>] [--dot]
  sea-dse recovery  --app <spec> --cores <N> --scaling ... --groups ...
                    --policy none|reexec:<cov>|ckpt:<cov>:<interval_s>:<save_s>
  sea-dse campaign  --spec <file> | --builtin <name> | --list-builtin
                    [--jobs <N>] [--format human|csv|jsonl]
                    [--budget fast|smoke|paper|thorough]
                    [--resume <journal>] [--cache <dir>] [--report-aggregates]
  sea-dse report    <journal|cache-dir> [--format human|csv|jsonl]
  sea-dse serve     --spec <file> | --builtin <name>  --listen <addr:port>
                    [--format ...] [--budget ...] [--resume <journal>]
                    [--cache <dir>] [--timeout <secs>]
  sea-dse worker    --connect <addr:port> [--jobs <N>] [--cache <dir>]
                    [--retry <secs>]
  sea-dse daemon    --listen <addr:port> [--cache <dir>] [--journal-dir <dir>]
                    [--timeout <secs>]
  sea-dse submit    --connect <addr:port> --spec <file> | --builtin <name>
                    [--watch]
  sea-dse status    --connect <addr:port>
  sea-dse cancel    --connect <addr:port> --id <N>
  sea-dse stop      --connect <addr:port>
  sea-dse cache     stats|verify|prune [--dir <dir>] [--max-age-days <D>]
                    [--max-size-mib <M>] [--delete-corrupt]
  sea-dse help

APP SPECS: mpeg2 | fig8 | random:<tasks>[:<seed>]
GROUPS:    0-based task ids, comma-separated within a core, cores separated by '|'
           e.g. --groups \"0,1,2,3,4,5|6,7|8|9,10\"
JOBS:      worker threads for `optimize`'s scaling enumeration; results are
           identical for every value (default: SEA_JOBS env, else available
           parallelism). `baseline` is a single sequential annealing chain
           plus one evaluation per scaling, so --jobs has no effect there.
CAMPAIGNS: declarative multi-scenario runs (see README \"Campaigns\"):
           progress streams to stderr as units complete; the
           enumeration-order final report prints to stdout and is byte
           identical for every --jobs value.
           Campaign budgets name evaluation caps per voltage scaling:
           fast=2k, smoke=600, paper=20k (the EXPERIMENTS.md harness
           profile), thorough=60k. NOTE: `campaign --budget paper` is the
           experiment-harness budget (20k); `optimize --budget paper` is
           the thorough 60k budget — use `campaign --budget thorough` to
           match the latter.
ANALYTICS: `campaign --report-aggregates` appends aggregate sections after
           the per-unit report: Fig. 10-style win rates (optimize vs each
           baseline at matched app/cores/levels), Pareto fronts over
           (P, Gamma) with dominated designs marked, best design per app
           (min P*Gamma), and cross-seed min/median/max spread. `report`
           computes the same sections offline from a --resume journal or
           a --cache directory with zero re-evaluation, byte-identical to
           the live output. See README \"Campaign analytics\".
RESUME:    --resume <journal> write-ahead journals every completed unit
           (fsync'd per record). Re-running with the same spec and journal
           restores completed units and runs only the missing ones; the
           final report is byte-identical to an uninterrupted run. A
           journal written for a different campaign is refused.
CACHE:     --cache <dir> (or the SEA_CACHE env var) keeps a
           content-addressed result cache keyed by each unit's stable
           hash; warm re-runs and overlapping campaigns skip evaluation.
           Without either, no cache I/O happens at all. `sea-dse cache`
           maintains such a directory: stats, checksum verification,
           pruning by age/size.
DIST:      `serve` expands a campaign and fans units to TCP workers
           (`worker --connect`); results are verified against each
           unit's content hash and merged in enumeration order, so the
           stdout report is byte-identical to a local `campaign` run for
           any worker count, join/leave order or mid-run worker kill.
           --resume and --cache work across the network boundary (the
           cache is probed coordinator-side before dispatch). See README
           \"Distributed campaigns\" for the frame-protocol spec.
SERVICE:   `daemon` is the long-running multi-campaign coordinator: the
           same workers connect to it, while `submit` registers campaign
           specs over the wire, `status` reports per-campaign progress
           plus per-worker fleet stats as JSON, `cancel` withdraws one
           campaign and `stop` shuts the fleet down. Campaigns share the
           worker pool fairly (round-robin, cost-model order within each
           campaign), share one --cache, and deduplicate identical units
           fleet-wide. `submit --watch` streams records to stderr and
           the final report to stdout, byte-identical to a local
           `campaign --format jsonl` run of the same spec. With
           --journal-dir, re-submitting a spec after a daemon restart
           resumes from its journal. See README \"Service mode\".
";

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "optimize" => Ok(Command::Optimize(parse_optimize(rest)?)),
        "baseline" => {
            let objective = match get_flag(rest, "--objective")? {
                Some(o) => parse_objective(&o)?,
                None => return Err(CliError("baseline requires --objective r|tm|tmr".into())),
            };
            Ok(Command::Baseline(BaselineArgs {
                common: parse_optimize(rest)?,
                objective,
            }))
        }
        "simulate" => Ok(Command::Simulate(parse_design(rest)?)),
        "sweep" => Ok(Command::Sweep(parse_sweep(rest)?)),
        "generate" => Ok(Command::Generate(parse_generate(rest)?)),
        "campaign" => Ok(Command::Campaign(parse_campaign_cmd(rest)?)),
        "report" => Ok(Command::Report(parse_report_cmd(rest)?)),
        "serve" => Ok(Command::Serve(parse_serve_cmd(rest)?)),
        "worker" => Ok(Command::Worker(parse_worker_cmd(rest)?)),
        "daemon" => Ok(Command::Daemon(parse_daemon_cmd(rest)?)),
        "submit" => Ok(Command::Submit(parse_submit_cmd(rest)?)),
        "status" => Ok(Command::Status(parse_connect_cmd(rest, "status")?)),
        "cancel" => Ok(Command::Cancel(parse_cancel_cmd(rest)?)),
        "stop" => Ok(Command::Stop(parse_connect_cmd(rest, "stop")?)),
        "cache" => Ok(Command::CacheCmd(parse_cache_cmd(rest)?)),
        "recovery" => {
            let policy = match get_flag(rest, "--policy")? {
                Some(p) => parse_policy(&p)?,
                None => PolicySpec::None,
            };
            Ok(Command::Recovery(RecoveryArgs {
                design: parse_design(rest)?,
                policy,
            }))
        }
        other => Err(CliError(format!(
            "unknown command `{other}` (try `sea-dse help`)"
        ))),
    }
}

fn get_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            let Some(v) = args.get(i + 1) else {
                return Err(CliError(format!("flag {name} needs a value")));
            };
            if value.is_some() {
                // Last-wins duplicate handling silently drops user intent;
                // make the conflict loud instead.
                return Err(CliError(format!(
                    "flag {name} given more than once (remove the duplicate)"
                )));
            }
            value = Some(v.clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(value)
}

fn has_switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("cannot parse {what} from `{s}`")))
}

fn parse_app(args: &[String]) -> Result<AppSpec, CliError> {
    let Some(spec) = get_flag(args, "--app")? else {
        return Err(CliError(
            "missing --app (mpeg2 | fig8 | random:<tasks>[:<seed>])".into(),
        ));
    };
    parse_app_spec(&spec)
}

/// Parses an application spec string through the shared
/// [`sea_taskgraph::spec`] grammar.
///
/// # Errors
///
/// Returns [`CliError`] for unknown specs or malformed `random:` forms.
pub fn parse_app_spec(spec: &str) -> Result<AppSpec, CliError> {
    spec.parse()
        .map_err(|e: crate::taskgraph::SpecError| CliError(e.to_string()))
}

fn parse_cores(args: &[String]) -> Result<usize, CliError> {
    let Some(c) = get_flag(args, "--cores")? else {
        return Err(CliError("missing --cores".into()));
    };
    let cores: usize = parse_num(&c, "core count")?;
    if cores == 0 {
        return Err(CliError("--cores must be at least 1".into()));
    }
    Ok(cores)
}

fn parse_optimize(args: &[String]) -> Result<OptimizeArgs, CliError> {
    let levels = match get_flag(args, "--levels")? {
        Some(l) => {
            let l: usize = parse_num(&l, "level count")?;
            if !(2..=4).contains(&l) {
                return Err(CliError("--levels must be 2, 3 or 4".into()));
            }
            l
        }
        None => 3,
    };
    let paper_budget = match get_flag(args, "--budget")? {
        None => false,
        Some(b) if b == "fast" => false,
        Some(b) if b == "paper" => true,
        Some(b) => return Err(CliError(format!("unknown budget `{b}` (fast|paper)"))),
    };
    let selection = match get_flag(args, "--selection")? {
        None => SelectionSpec::Default,
        Some(s) if s == "product" => SelectionSpec::Default,
        Some(s) if s == "power" => SelectionSpec::Power,
        Some(s) if s == "gamma" => SelectionSpec::Gamma,
        Some(s) => {
            return Err(CliError(format!(
                "unknown selection `{s}` (product|power|gamma)"
            )))
        }
    };
    let jobs = match get_flag(args, "--jobs")? {
        None => None,
        Some(j) => {
            let j: usize = parse_num(&j, "job count")?;
            if j == 0 {
                return Err(CliError("--jobs must be at least 1".into()));
            }
            Some(j)
        }
    };
    Ok(OptimizeArgs {
        app: parse_app(args)?,
        cores: parse_cores(args)?,
        levels,
        paper_budget,
        seed: match get_flag(args, "--seed")? {
            Some(s) => parse_num(&s, "seed")?,
            None => 0x5EA,
        },
        selection,
        jobs,
        csv: has_switch(args, "--csv"),
    })
}

fn parse_objective(s: &str) -> Result<BaselineObjective, CliError> {
    match s {
        "r" => Ok(BaselineObjective::R),
        "tm" => Ok(BaselineObjective::Tm),
        "tmr" => Ok(BaselineObjective::TmR),
        other => Err(CliError(format!("unknown objective `{other}` (r|tm|tmr)"))),
    }
}

/// Parses a `|`-separated group list like `0,1,2|3|4,5`.
///
/// # Errors
///
/// Returns [`CliError`] for malformed indices.
pub fn parse_groups(s: &str) -> Result<Vec<Vec<usize>>, CliError> {
    s.split('|')
        .map(|group| {
            let group = group.trim();
            if group.is_empty() {
                return Ok(Vec::new());
            }
            group
                .split(',')
                .map(|t| parse_num(t.trim(), "task index"))
                .collect()
        })
        .collect()
}

fn parse_scaling(s: &str) -> Result<Vec<u8>, CliError> {
    s.split(',')
        .map(|x| parse_num(x.trim(), "scaling coefficient"))
        .collect()
}

fn parse_design(args: &[String]) -> Result<DesignArgs, CliError> {
    let Some(scaling) = get_flag(args, "--scaling")? else {
        return Err(CliError("missing --scaling (e.g. 2,2,3,2)".into()));
    };
    let Some(groups) = get_flag(args, "--groups")? else {
        return Err(CliError("missing --groups (e.g. \"0,1|2,3\")".into()));
    };
    Ok(DesignArgs {
        app: parse_app(args)?,
        cores: parse_cores(args)?,
        scaling: parse_scaling(&scaling)?,
        groups: parse_groups(&groups)?,
        ser: match get_flag(args, "--ser")? {
            Some(s) => parse_num(&s, "SER")?,
            None => sea_arch::ser::PAPER_SER,
        },
        seed: match get_flag(args, "--seed")? {
            Some(s) => parse_num(&s, "seed")?,
            None => 7,
        },
    })
}

fn parse_sweep(args: &[String]) -> Result<SweepArgs, CliError> {
    Ok(SweepArgs {
        app: parse_app(args)?,
        cores: parse_cores(args)?,
        count: match get_flag(args, "--count")? {
            Some(c) => parse_num(&c, "count")?,
            None => 120,
        },
        scale: match get_flag(args, "--scale")? {
            Some(s) => parse_num(&s, "scale")?,
            None => 1,
        },
        seed: match get_flag(args, "--seed")? {
            Some(s) => parse_num(&s, "seed")?,
            None => 42,
        },
        csv: has_switch(args, "--csv"),
    })
}

fn parse_generate(args: &[String]) -> Result<GenerateArgs, CliError> {
    let Some(tasks) = get_flag(args, "--tasks")? else {
        return Err(CliError("missing --tasks".into()));
    };
    Ok(GenerateArgs {
        tasks: parse_num(&tasks, "task count")?,
        seed: match get_flag(args, "--seed")? {
            Some(s) => parse_num(&s, "seed")?,
            None => 7,
        },
        dot: has_switch(args, "--dot"),
    })
}

fn parse_campaign_cmd(args: &[String]) -> Result<CampaignArgs, CliError> {
    // Campaign output is flag-selected and consumed by scripts, so a
    // misspelled flag must fail loudly instead of silently falling back
    // to a default format/budget.
    reject_unknown_flags(
        args,
        &[
            "--spec",
            "--builtin",
            "--jobs",
            "--format",
            "--budget",
            "--resume",
            "--cache",
        ],
        &["--list-builtin", "--report-aggregates"],
        "--spec|--builtin|--list-builtin|--jobs|--format|--budget|--resume|--cache|--report-aggregates",
    )?;
    let spec_path = get_flag(args, "--spec")?;
    let builtin = get_flag(args, "--builtin")?;
    let list_builtin = has_switch(args, "--list-builtin");
    let sources = usize::from(spec_path.is_some())
        + usize::from(builtin.is_some())
        + usize::from(list_builtin);
    if sources != 1 {
        return Err(CliError(
            "campaign needs exactly one of --spec <file>, --builtin <name>, --list-builtin".into(),
        ));
    }
    let jobs = match get_flag(args, "--jobs")? {
        None => None,
        Some(j) => {
            let j: usize = parse_num(&j, "job count")?;
            if j == 0 {
                return Err(CliError("--jobs must be at least 1".into()));
            }
            Some(j)
        }
    };
    let format = parse_format(args)?;
    let budget = parse_budget_flag(args)?;
    let resume = get_flag(args, "--resume")?;
    let cache_dir = get_flag(args, "--cache")?;
    let report_aggregates = has_switch(args, "--report-aggregates");
    if list_builtin && (resume.is_some() || cache_dir.is_some() || report_aggregates) {
        return Err(CliError(
            "--resume/--cache/--report-aggregates make no sense with --list-builtin".into(),
        ));
    }
    Ok(CampaignArgs {
        spec_path,
        builtin,
        list_builtin,
        jobs,
        format,
        budget,
        resume,
        cache_dir,
        report_aggregates,
    })
}

fn parse_report_cmd(args: &[String]) -> Result<ReportArgs, CliError> {
    let Some((source, rest)) = args.split_first() else {
        return Err(CliError(
            "report needs a source: a --resume journal file or a --cache directory".into(),
        ));
    };
    if source.starts_with("--") {
        return Err(CliError(format!(
            "report takes its source positionally (`sea-dse report <journal|cache-dir>`), \
             got flag `{source}` first"
        )));
    }
    reject_unknown_flags(rest, &["--format"], &[], "--format")?;
    Ok(ReportArgs {
        source: source.clone(),
        format: parse_format(rest)?,
    })
}

/// Rejects unknown flags: `args` may only contain the given value flags
/// (each followed by a value) and switches.
fn reject_unknown_flags(
    args: &[String],
    value_flags: &[&str],
    switches: &[&str],
    usage: &str,
) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if value_flags.contains(&arg) {
            i += 2;
        } else if switches.contains(&arg) {
            i += 1;
        } else {
            return Err(CliError(format!("unknown flag `{arg}` ({usage})")));
        }
    }
    Ok(())
}

fn parse_serve_cmd(args: &[String]) -> Result<ServeArgs, CliError> {
    reject_unknown_flags(
        args,
        &[
            "--spec",
            "--builtin",
            "--listen",
            "--format",
            "--budget",
            "--resume",
            "--cache",
            "--timeout",
        ],
        &[],
        "--spec|--builtin|--listen|--format|--budget|--resume|--cache|--timeout",
    )?;
    let spec_path = get_flag(args, "--spec")?;
    let builtin = get_flag(args, "--builtin")?;
    if usize::from(spec_path.is_some()) + usize::from(builtin.is_some()) != 1 {
        return Err(CliError(
            "serve needs exactly one of --spec <file>, --builtin <name>".into(),
        ));
    }
    let Some(listen) = get_flag(args, "--listen")? else {
        return Err(CliError(
            "serve needs --listen <addr:port> (e.g. 127.0.0.1:7411; port 0 = ephemeral)".into(),
        ));
    };
    let format = parse_format(args)?;
    let budget = parse_budget_flag(args)?;
    let timeout_s = match get_flag(args, "--timeout")? {
        Some(t) => {
            let t: u64 = parse_num(&t, "timeout seconds")?;
            // Workers heartbeat every 2 s while evaluating; a timeout at
            // or below that would kill every healthy worker on its first
            // unit and live-lock the campaign.
            if t < 5 {
                return Err(CliError(
                    "--timeout must be at least 5 seconds (workers heartbeat every 2 s)".into(),
                ));
            }
            t
        }
        None => 30,
    };
    Ok(ServeArgs {
        spec_path,
        builtin,
        listen,
        format,
        budget,
        resume: get_flag(args, "--resume")?,
        cache_dir: get_flag(args, "--cache")?,
        timeout_s,
    })
}

fn parse_worker_cmd(args: &[String]) -> Result<WorkerArgs, CliError> {
    reject_unknown_flags(
        args,
        &["--connect", "--jobs", "--cache", "--retry"],
        &[],
        "--connect|--jobs|--cache|--retry",
    )?;
    let Some(connect) = get_flag(args, "--connect")? else {
        return Err(CliError("worker needs --connect <addr:port>".into()));
    };
    let jobs = match get_flag(args, "--jobs")? {
        None => None,
        Some(j) => {
            let j: usize = parse_num(&j, "job count")?;
            if j == 0 {
                return Err(CliError("--jobs must be at least 1".into()));
            }
            Some(j)
        }
    };
    let retry_s = match get_flag(args, "--retry")? {
        Some(r) => parse_num(&r, "retry seconds")?,
        None => 10,
    };
    Ok(WorkerArgs {
        connect,
        jobs,
        cache_dir: get_flag(args, "--cache")?,
        retry_s,
    })
}

fn parse_daemon_cmd(args: &[String]) -> Result<DaemonArgs, CliError> {
    reject_unknown_flags(
        args,
        &["--listen", "--cache", "--journal-dir", "--timeout"],
        &[],
        "--listen|--cache|--journal-dir|--timeout",
    )?;
    let Some(listen) = get_flag(args, "--listen")? else {
        return Err(CliError(
            "daemon needs --listen <addr:port> (e.g. 127.0.0.1:7411; port 0 = ephemeral)".into(),
        ));
    };
    let timeout_s = match get_flag(args, "--timeout")? {
        Some(t) => {
            let t: u64 = parse_num(&t, "timeout seconds")?;
            // Same floor as `serve`: workers heartbeat every 2 s.
            if t < 5 {
                return Err(CliError(
                    "--timeout must be at least 5 seconds (workers heartbeat every 2 s)".into(),
                ));
            }
            t
        }
        None => 30,
    };
    Ok(DaemonArgs {
        listen,
        cache_dir: get_flag(args, "--cache")?,
        journal_dir: get_flag(args, "--journal-dir")?,
        timeout_s,
    })
}

fn parse_submit_cmd(args: &[String]) -> Result<SubmitArgs, CliError> {
    reject_unknown_flags(
        args,
        &["--connect", "--spec", "--builtin"],
        &["--watch"],
        "--connect|--spec|--builtin|--watch",
    )?;
    let Some(connect) = get_flag(args, "--connect")? else {
        return Err(CliError("submit needs --connect <addr:port>".into()));
    };
    let spec_path = get_flag(args, "--spec")?;
    let builtin = get_flag(args, "--builtin")?;
    if usize::from(spec_path.is_some()) + usize::from(builtin.is_some()) != 1 {
        return Err(CliError(
            "submit needs exactly one of --spec <file>, --builtin <name>".into(),
        ));
    }
    Ok(SubmitArgs {
        connect,
        spec_path,
        builtin,
        watch: has_switch(args, "--watch"),
    })
}

fn parse_connect_cmd(args: &[String], verb: &str) -> Result<ConnectArgs, CliError> {
    reject_unknown_flags(args, &["--connect"], &[], "--connect")?;
    let Some(connect) = get_flag(args, "--connect")? else {
        return Err(CliError(format!("{verb} needs --connect <addr:port>")));
    };
    Ok(ConnectArgs { connect })
}

fn parse_cancel_cmd(args: &[String]) -> Result<CancelArgs, CliError> {
    reject_unknown_flags(args, &["--connect", "--id"], &[], "--connect|--id")?;
    let Some(connect) = get_flag(args, "--connect")? else {
        return Err(CliError("cancel needs --connect <addr:port>".into()));
    };
    let Some(id) = get_flag(args, "--id")? else {
        return Err(CliError(
            "cancel needs --id <N> (a campaign id from `submit` or `status`)".into(),
        ));
    };
    Ok(CancelArgs {
        connect,
        id: parse_num(&id, "campaign id")?,
    })
}

fn parse_cache_cmd(args: &[String]) -> Result<CacheArgs, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError("cache needs an action: stats|verify|prune".into()));
    };
    let action = match action.as_str() {
        "stats" => CacheAction::Stats,
        "verify" => CacheAction::Verify,
        "prune" => CacheAction::Prune,
        other => {
            return Err(CliError(format!(
                "unknown cache action `{other}` (stats|verify|prune)"
            )))
        }
    };
    reject_unknown_flags(
        args,
        &["--dir", "--max-age-days", "--max-size-mib"],
        &["--delete-corrupt", action_keyword(action)],
        "--dir|--max-age-days|--max-size-mib|--delete-corrupt",
    )?;
    let max_age_days = match get_flag(rest, "--max-age-days")? {
        Some(d) => {
            let d: f64 = parse_num(&d, "age in days")?;
            if !d.is_finite() || d < 0.0 {
                return Err(CliError("--max-age-days must be non-negative".into()));
            }
            Some(d)
        }
        None => None,
    };
    let max_size_mib = match get_flag(rest, "--max-size-mib")? {
        Some(m) => Some(parse_num(&m, "size in MiB")?),
        None => None,
    };
    let delete_corrupt = has_switch(rest, "--delete-corrupt");
    match action {
        CacheAction::Prune if max_age_days.is_none() && max_size_mib.is_none() => {
            return Err(CliError(
                "prune needs --max-age-days <D> and/or --max-size-mib <M>".into(),
            ));
        }
        CacheAction::Stats | CacheAction::Verify
            if max_age_days.is_some() || max_size_mib.is_some() =>
        {
            return Err(CliError(
                "--max-age-days/--max-size-mib only apply to `cache prune`".into(),
            ));
        }
        CacheAction::Stats | CacheAction::Prune if delete_corrupt => {
            return Err(CliError(
                "--delete-corrupt only applies to `cache verify`".into(),
            ));
        }
        _ => {}
    }
    Ok(CacheArgs {
        action,
        dir: get_flag(rest, "--dir")?,
        max_age_days,
        max_size_mib,
        delete_corrupt,
    })
}

fn action_keyword(action: CacheAction) -> &'static str {
    match action {
        CacheAction::Stats => "stats",
        CacheAction::Verify => "verify",
        CacheAction::Prune => "prune",
    }
}

fn parse_format(args: &[String]) -> Result<OutputFormat, CliError> {
    match get_flag(args, "--format")?.as_deref() {
        None | Some("human") => Ok(OutputFormat::Human),
        Some("csv") => Ok(OutputFormat::Csv),
        Some("jsonl") => Ok(OutputFormat::Jsonl),
        Some(other) => Err(CliError(format!(
            "unknown --format `{other}` (human|csv|jsonl)"
        ))),
    }
}

fn parse_budget_flag(args: &[String]) -> Result<Option<BudgetSpec>, CliError> {
    match get_flag(args, "--budget")? {
        None => Ok(None),
        Some(b) => BudgetSpec::parse(&b).map(Some).map_err(|_| {
            CliError(format!(
                "unknown --budget `{b}` (fast|smoke|paper|thorough)"
            ))
        }),
    }
}

fn parse_policy(s: &str) -> Result<PolicySpec, CliError> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("none") => Ok(PolicySpec::None),
        Some("reexec") => {
            let cov: f64 = parse_num(
                parts
                    .next()
                    .ok_or_else(|| CliError("reexec needs a coverage".into()))?,
                "coverage",
            )?;
            Ok(PolicySpec::ReExec { coverage: cov })
        }
        Some("ckpt") => {
            let cov: f64 = parse_num(
                parts
                    .next()
                    .ok_or_else(|| CliError("ckpt needs a coverage".into()))?,
                "coverage",
            )?;
            let interval: f64 = parse_num(
                parts
                    .next()
                    .ok_or_else(|| CliError("ckpt needs an interval".into()))?,
                "interval",
            )?;
            let save: f64 = parse_num(
                parts
                    .next()
                    .ok_or_else(|| CliError("ckpt needs a save cost".into()))?,
                "save cost",
            )?;
            Ok(PolicySpec::Checkpoint {
                coverage: cov,
                interval_s: interval,
                save_s: save,
            })
        }
        _ => Err(CliError(format!(
            "unknown policy `{s}` (none|reexec:<cov>|ckpt:<cov>:<interval>:<save>)"
        ))),
    }
}

/// Builds the `LevelSet` for a CLI level count.
///
/// # Panics
///
/// Panics if `levels` was not validated to 2..=4.
#[must_use]
pub fn level_set(levels: usize) -> LevelSet {
    sea_campaign::level_set(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_optimize() {
        let cmd = parse(&argv(
            "optimize --app mpeg2 --cores 4 --levels 4 --budget paper --seed 9 --selection gamma --jobs 8 --csv",
        ))
        .unwrap();
        let Command::Optimize(a) = cmd else {
            panic!("wrong command")
        };
        assert_eq!(a.app, AppSpec::Mpeg2);
        assert_eq!(a.cores, 4);
        assert_eq!(a.levels, 4);
        assert!(a.paper_budget);
        assert_eq!(a.seed, 9);
        assert_eq!(a.selection, SelectionSpec::Gamma);
        assert_eq!(a.jobs, Some(8));
        assert!(a.csv);
    }

    #[test]
    fn optimize_defaults() {
        let Command::Optimize(a) = parse(&argv("optimize --app fig8 --cores 3")).unwrap() else {
            panic!()
        };
        assert_eq!(a.levels, 3);
        assert!(!a.paper_budget);
        assert_eq!(a.selection, SelectionSpec::Default);
        assert_eq!(a.jobs, None);
        assert!(!a.csv);
    }

    #[test]
    fn jobs_must_be_positive() {
        assert!(parse(&argv("optimize --app mpeg2 --cores 4 --jobs 0")).is_err());
        assert!(parse(&argv("optimize --app mpeg2 --cores 4 --jobs x")).is_err());
    }

    #[test]
    fn parses_random_spec() {
        assert_eq!(
            parse_app_spec("random:40").unwrap(),
            AppSpec::Random { tasks: 40, seed: 7 }
        );
        assert_eq!(
            parse_app_spec("random:60:11").unwrap(),
            AppSpec::Random {
                tasks: 60,
                seed: 11
            }
        );
        assert!(parse_app_spec("random").is_err());
        assert!(parse_app_spec("random:x").is_err());
        assert!(parse_app_spec("random:10:1:2").is_err());
        assert!(parse_app_spec("h264").is_err());
    }

    #[test]
    fn parses_baseline_objectives() {
        for (s, o) in [
            ("r", BaselineObjective::R),
            ("tm", BaselineObjective::Tm),
            ("tmr", BaselineObjective::TmR),
        ] {
            let Command::Baseline(b) = parse(&argv(&format!(
                "baseline --objective {s} --app mpeg2 --cores 4"
            )))
            .unwrap() else {
                panic!()
            };
            assert_eq!(b.objective, o);
        }
        assert!(parse(&argv("baseline --app mpeg2 --cores 4")).is_err());
        assert!(parse(&argv("baseline --objective x --app mpeg2 --cores 4")).is_err());
    }

    #[test]
    fn parses_simulate_design() {
        let Command::Simulate(d) = parse(&argv(
            "simulate --app mpeg2 --cores 4 --scaling 2,2,3,2 --groups 0,1,2,3,4,5|6,7|8|9,10",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(d.scaling, vec![2, 2, 3, 2]);
        assert_eq!(d.groups.len(), 4);
        assert_eq!(d.groups[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.groups[2], vec![8]);
        assert_eq!(d.ser, sea_arch::ser::PAPER_SER);
    }

    #[test]
    fn parses_policies() {
        assert_eq!(parse_policy("none").unwrap(), PolicySpec::None);
        assert_eq!(
            parse_policy("reexec:0.9").unwrap(),
            PolicySpec::ReExec { coverage: 0.9 }
        );
        assert_eq!(
            parse_policy("ckpt:0.95:0.1:0.0001").unwrap(),
            PolicySpec::Checkpoint {
                coverage: 0.95,
                interval_s: 0.1,
                save_s: 0.0001
            }
        );
        assert!(parse_policy("reexec").is_err());
        assert!(parse_policy("ckpt:0.9").is_err());
        assert!(parse_policy("retry:1").is_err());
    }

    #[test]
    fn groups_parser_handles_spaces_and_empties() {
        assert_eq!(
            parse_groups("0, 1 | 2 |").unwrap(),
            vec![vec![0, 1], vec![2], vec![]]
        );
        assert!(parse_groups("0,a").is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&argv("optimize --cores 4")).is_err());
        assert!(parse(&argv("optimize --app mpeg2")).is_err());
        assert!(parse(&argv("simulate --app mpeg2 --cores 4")).is_err());
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("optimize --app mpeg2 --cores 0")).is_err());
        assert!(parse(&argv("optimize --app mpeg2 --cores 4 --levels 7")).is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn app_specs_build() {
        assert_eq!(AppSpec::Mpeg2.build().unwrap().graph().len(), 11);
        assert_eq!(AppSpec::Fig8.build().unwrap().graph().len(), 6);
        assert_eq!(
            AppSpec::Random { tasks: 15, seed: 3 }
                .build()
                .unwrap()
                .graph()
                .len(),
            15
        );
    }

    #[test]
    fn sweep_and_generate_defaults() {
        let Command::Sweep(s) = parse(&argv("sweep --app mpeg2 --cores 4")).unwrap() else {
            panic!()
        };
        assert_eq!(s.count, 120);
        assert_eq!(s.scale, 1);
        let Command::Generate(g) = parse(&argv("generate --tasks 25 --dot")).unwrap() else {
            panic!()
        };
        assert_eq!(g.tasks, 25);
        assert!(g.dot);
    }

    #[test]
    fn flag_value_missing_is_reported() {
        assert!(parse(&argv("optimize --app")).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected_with_the_flag_name() {
        let err = parse(&argv("optimize --app mpeg2 --cores 4 --cores 2")).unwrap_err();
        assert!(err.0.contains("--cores"), "{err}");
        assert!(err.0.contains("more than once"), "{err}");
        let err = parse(&argv("optimize --app mpeg2 --app fig8 --cores 4")).unwrap_err();
        assert!(err.0.contains("--app"), "{err}");
        let err = parse(&argv("campaign --spec a.toml --format csv --format jsonl")).unwrap_err();
        assert!(err.0.contains("--format"), "{err}");
    }

    #[test]
    fn parses_campaign_command() {
        let Command::Campaign(c) = parse(&argv(
            "campaign --spec examples/campaign_quickstart.toml --jobs 2 --format jsonl --budget smoke",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(
            c.spec_path.as_deref(),
            Some("examples/campaign_quickstart.toml")
        );
        assert_eq!(c.builtin, None);
        assert!(!c.list_builtin);
        assert_eq!(c.jobs, Some(2));
        assert_eq!(c.format, OutputFormat::Jsonl);
        assert_eq!(c.budget, Some(BudgetSpec::Smoke));

        let Command::Campaign(c) = parse(&argv("campaign --builtin quickstart")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.builtin.as_deref(), Some("quickstart"));
        assert_eq!(c.format, OutputFormat::Human);

        let Command::Campaign(c) = parse(&argv("campaign --list-builtin")).unwrap() else {
            panic!("wrong command")
        };
        assert!(c.list_builtin);
    }

    #[test]
    fn parses_campaign_resume_and_cache_flags() {
        let Command::Campaign(c) = parse(&argv(
            "campaign --builtin quickstart --resume run.jsonl --cache /tmp/sea-cache",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.resume.as_deref(), Some("run.jsonl"));
        assert_eq!(c.cache_dir.as_deref(), Some("/tmp/sea-cache"));

        let Command::Campaign(c) = parse(&argv("campaign --builtin quickstart")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.resume, None);
        assert_eq!(c.cache_dir, None);

        // Duplicates and valueless forms are rejected like other flags.
        assert!(parse(&argv("campaign --builtin q --resume a --resume b")).is_err());
        assert!(parse(&argv("campaign --builtin q --cache")).is_err());
        // Listing builtins does not take persistence flags.
        assert!(parse(&argv("campaign --list-builtin --resume a")).is_err());
        assert!(parse(&argv("campaign --list-builtin --cache d")).is_err());
    }

    #[test]
    fn parses_campaign_report_aggregates_switch() {
        let Command::Campaign(c) =
            parse(&argv("campaign --builtin quickstart --report-aggregates")).unwrap()
        else {
            panic!("wrong command")
        };
        assert!(c.report_aggregates);
        let Command::Campaign(c) = parse(&argv("campaign --builtin quickstart")).unwrap() else {
            panic!("wrong command")
        };
        assert!(!c.report_aggregates);
        // Listing builtins produces no report to aggregate.
        assert!(parse(&argv("campaign --list-builtin --report-aggregates")).is_err());
    }

    #[test]
    fn parses_report_command() {
        let Command::Report(r) = parse(&argv("report run.jsonl --format csv")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(r.source, "run.jsonl");
        assert_eq!(r.format, OutputFormat::Csv);

        let Command::Report(r) = parse(&argv("report /tmp/sea-cache")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(r.source, "/tmp/sea-cache");
        assert_eq!(r.format, OutputFormat::Human, "default format");

        // The source is positional and required.
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report --format csv run.jsonl")).is_err());
        // Misspelled/foreign flags fail loudly.
        assert!(parse(&argv("report run.jsonl --fromat csv")).is_err());
        assert!(parse(&argv("report run.jsonl --jobs 2")).is_err());
        assert!(parse(&argv("report run.jsonl --format yaml")).is_err());
        assert!(parse(&argv("report run.jsonl --format csv --format jsonl")).is_err());
    }

    #[test]
    fn parses_serve_command() {
        let Command::Serve(s) = parse(&argv(
            "serve --builtin quickstart --listen 127.0.0.1:7411 --format jsonl \
             --budget smoke --resume j.jsonl --cache /tmp/c --timeout 45",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(s.builtin.as_deref(), Some("quickstart"));
        assert_eq!(s.listen, "127.0.0.1:7411");
        assert_eq!(s.format, OutputFormat::Jsonl);
        assert_eq!(s.budget, Some(BudgetSpec::Smoke));
        assert_eq!(s.resume.as_deref(), Some("j.jsonl"));
        assert_eq!(s.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(s.timeout_s, 45);

        let Command::Serve(s) = parse(&argv("serve --spec a.toml --listen 0.0.0.0:0")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(s.spec_path.as_deref(), Some("a.toml"));
        assert_eq!(s.timeout_s, 30, "default timeout");
        assert_eq!(s.format, OutputFormat::Human);

        // Exactly one campaign source, a listen address, sane timeout.
        assert!(parse(&argv("serve --listen :0")).is_err());
        assert!(parse(&argv("serve --spec a --builtin b --listen :0")).is_err());
        assert!(parse(&argv("serve --builtin quickstart")).is_err());
        assert!(parse(&argv("serve --builtin q --listen :0 --timeout 0")).is_err());
        // Below the workers' heartbeat interval = every healthy worker
        // would be presumed dead.
        assert!(parse(&argv("serve --builtin q --listen :0 --timeout 2")).is_err());
        assert!(parse(&argv("serve --builtin q --listen :0 --timeout 5")).is_ok());
        // Misspelled flags fail loudly; campaign-only flags are rejected.
        assert!(parse(&argv("serve --builtin q --listen :0 --jobs 2")).is_err());
        assert!(parse(&argv("serve --builtin q --listen :0 --fromat jsonl")).is_err());
    }

    #[test]
    fn parses_worker_command() {
        let Command::Worker(w) = parse(&argv(
            "worker --connect 10.0.0.5:7411 --jobs 4 --cache /tmp/c --retry 60",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(w.connect, "10.0.0.5:7411");
        assert_eq!(w.jobs, Some(4));
        assert_eq!(w.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(w.retry_s, 60);

        let Command::Worker(w) = parse(&argv("worker --connect localhost:7411")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(w.jobs, None);
        assert_eq!(w.retry_s, 10, "default retry budget");

        assert!(parse(&argv("worker")).is_err());
        assert!(parse(&argv("worker --connect a:1 --jobs 0")).is_err());
        assert!(parse(&argv("worker --connect a:1 --listen b:2")).is_err());
    }

    #[test]
    fn parses_daemon_command() {
        let Command::Daemon(d) = parse(&argv(
            "daemon --listen 127.0.0.1:0 --cache /tmp/c --journal-dir /tmp/j --timeout 12",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(d.listen, "127.0.0.1:0");
        assert_eq!(d.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(d.journal_dir.as_deref(), Some("/tmp/j"));
        assert_eq!(d.timeout_s, 12);

        let Command::Daemon(d) = parse(&argv("daemon --listen :7411")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(d.cache_dir, None);
        assert_eq!(d.journal_dir, None);
        assert_eq!(d.timeout_s, 30, "default heartbeat timeout");

        assert!(parse(&argv("daemon")).is_err());
        // Same timeout floor as `serve`.
        assert!(parse(&argv("daemon --listen :0 --timeout 2")).is_err());
        // Campaigns arrive via `submit`, never on the daemon command line.
        assert!(parse(&argv("daemon --listen :0 --spec a.toml")).is_err());
        assert!(parse(&argv("daemon --listen :0 --builtin q")).is_err());
    }

    #[test]
    fn parses_submit_and_status_commands() {
        let Command::Submit(s) = parse(&argv(
            "submit --connect localhost:7411 --spec a.toml --watch",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(s.connect, "localhost:7411");
        assert_eq!(s.spec_path.as_deref(), Some("a.toml"));
        assert!(s.watch);

        let Command::Submit(s) =
            parse(&argv("submit --connect :7411 --builtin quickstart")).unwrap()
        else {
            panic!("wrong command")
        };
        assert_eq!(s.builtin.as_deref(), Some("quickstart"));
        assert!(!s.watch);

        // Exactly one spec source, and the daemon address is mandatory.
        assert!(parse(&argv("submit --connect :7411")).is_err());
        assert!(parse(&argv("submit --connect :7411 --spec a --builtin b")).is_err());
        assert!(parse(&argv("submit --spec a.toml")).is_err());
        // The spec's own budget rules service runs; no --budget override.
        assert!(parse(&argv("submit --connect :7411 --spec a --budget fast")).is_err());

        let Command::Status(c) = parse(&argv("status --connect h:1")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.connect, "h:1");
        assert!(parse(&argv("status")).is_err());
        assert!(parse(&argv("status --connect h:1 --watch")).is_err());

        let Command::Stop(c) = parse(&argv("stop --connect h:1")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.connect, "h:1");

        let Command::Cancel(c) = parse(&argv("cancel --connect h:1 --id 2")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.connect, "h:1");
        assert_eq!(c.id, 2);
        assert!(parse(&argv("cancel --connect h:1")).is_err());
        assert!(parse(&argv("cancel --connect h:1 --id x")).is_err());
    }

    #[test]
    fn parses_cache_commands() {
        let Command::CacheCmd(c) = parse(&argv("cache stats --dir /tmp/c")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.action, CacheAction::Stats);
        assert_eq!(c.dir.as_deref(), Some("/tmp/c"));

        let Command::CacheCmd(c) = parse(&argv("cache verify --delete-corrupt")).unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.action, CacheAction::Verify);
        assert!(c.delete_corrupt);
        assert_eq!(c.dir, None, "falls back to SEA_CACHE at run time");

        let Command::CacheCmd(c) = parse(&argv(
            "cache prune --dir d --max-age-days 30 --max-size-mib 512",
        ))
        .unwrap() else {
            panic!("wrong command")
        };
        assert_eq!(c.action, CacheAction::Prune);
        assert_eq!(c.max_age_days, Some(30.0));
        assert_eq!(c.max_size_mib, Some(512));

        assert!(parse(&argv("cache")).is_err());
        assert!(parse(&argv("cache defrag")).is_err());
        // Prune needs at least one limit; flags are action-specific.
        assert!(parse(&argv("cache prune --dir d")).is_err());
        assert!(parse(&argv("cache stats --max-age-days 3")).is_err());
        assert!(parse(&argv("cache prune --max-age-days -1")).is_err());
        assert!(parse(&argv("cache verify --max-size-mib 1")).is_err());
        assert!(parse(&argv("cache stats --delete-corrupt")).is_err());
        assert!(parse(&argv("cache stats --frobnicate")).is_err());
    }

    #[test]
    fn campaign_rejects_bad_flag_values_by_name() {
        let err = parse(&argv("campaign --spec a.toml --format yaml")).unwrap_err();
        assert!(
            err.0.contains("--format") && err.0.contains("yaml"),
            "{err}"
        );
        let err = parse(&argv("campaign --spec a.toml --budget leisurely")).unwrap_err();
        assert!(
            err.0.contains("--budget") && err.0.contains("leisurely"),
            "{err}"
        );
        assert!(parse(&argv("campaign --spec a.toml --jobs 0")).is_err());
        // Misspelled flags fail loudly instead of defaulting.
        let err = parse(&argv("campaign --spec a.toml --fromat jsonl")).unwrap_err();
        assert!(err.0.contains("--fromat"), "{err}");
        assert!(parse(&argv("campaign --spec a.toml extra")).is_err());
        // Exactly one source selector.
        assert!(parse(&argv("campaign")).is_err());
        assert!(parse(&argv("campaign --spec a.toml --builtin quickstart")).is_err());
        assert!(parse(&argv("campaign --spec a.toml --list-builtin")).is_err());
    }
}
