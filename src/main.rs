//! `sea-dse` command-line tool: optimize, simulate, sweep, generate and
//! analyze MPSoC designs from the shell. Run `sea-dse help` for usage.

use std::process::ExitCode;

use sea_dse::arch::{Architecture, ScalingVector, SerModel};
use sea_dse::baselines::{BaselineOptimizer, Objective};
use sea_dse::campaign::{
    open_journal, read_journal_records, run_units_configured, Cache, CsvSink, EntryHealth,
    HumanSink, JsonlSink, RunConfig, Sink,
};
use sea_dse::cli::{
    self, BaselineObjective, CacheAction, CacheArgs, CampaignArgs, Command, DaemonArgs, DesignArgs,
    OptimizeArgs, OutputFormat, PolicySpec, ReportArgs, ServeArgs, SubmitArgs, WorkerArgs,
};
use sea_dse::experiments::campaigns as builtin_campaigns;
use sea_dse::opt::{
    DesignOptimizer, OptimizationOutcome, OptimizerConfig, SearchBudget, SelectionPolicy,
};
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sched::recovery::{self, RecoveryPolicy};
use sea_dse::sched::Mapping;
use sea_dse::sim::{simulate_design, SimConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        Command::Optimize(a) => {
            let app = a.app.build().map_err(|e| e.to_string())?;
            let out = DesignOptimizer::new(config_of(&a))
                .optimize(&app)
                .map_err(|e| e.to_string())?;
            print_outcome(&out, a.csv);
            Ok(())
        }
        Command::Baseline(b) => {
            let app = b.common.app.build().map_err(|e| e.to_string())?;
            let objective = match b.objective {
                BaselineObjective::R => Objective::RegisterUsage,
                BaselineObjective::Tm => Objective::Parallelism,
                BaselineObjective::TmR => Objective::RegTimeProduct,
            };
            let out = BaselineOptimizer::new(config_of(&b.common), objective)
                .optimize(&app)
                .map_err(|e| e.to_string())?;
            println!("# {}", objective.label());
            print_outcome(&out, b.common.csv);
            Ok(())
        }
        Command::Simulate(d) => {
            let (app, arch, mapping, scaling) = build_design(&d)?;
            let mut cfg = SimConfig::seeded(d.seed);
            cfg.ser = SerModel::calibrated(d.ser);
            let report = simulate_design(&app, &arch, &mapping, &scaling, &cfg)
                .map_err(|e| e.to_string())?;
            println!("design:  {mapping} @ {scaling}");
            println!(
                "timing:  TM = {:.4} s (deadline {:.4} s, {})",
                report.trace.tm_seconds,
                app.deadline_s(),
                if report.analytic.meets_deadline {
                    "met"
                } else {
                    "MISSED"
                }
            );
            println!(
                "power:   P = {:.3} mW   R = {:.1} kbit/cycle",
                report.analytic.power_mw,
                report.analytic.r_total_kbits()
            );
            println!(
                "faults:  injected {} | experienced {} | analytic Gamma {:.4e}",
                report.faults.total_injected,
                report.faults.total_experienced,
                report.analytic.gamma
            );
            for cf in &report.faults.per_core {
                println!(
                    "  {}: experienced {} (expected {:.1}), working set {:.1} kbit",
                    cf.core,
                    cf.experienced,
                    cf.expected_experienced,
                    cf.r_bits.as_kbits()
                );
            }
            Ok(())
        }
        Command::Sweep(s) => {
            let app = s.app.build().map_err(|e| e.to_string())?;
            let arch = Architecture::arm7_calibrated(s.cores, cli::level_set(3));
            let ctx = EvalContext::new(&app, &arch);
            let scaling = ScalingVector::uniform(s.scale, &arch).map_err(|e| e.to_string())?;
            let points =
                sea_dse::baselines::sweep::random_mapping_sweep(&ctx, &scaling, s.count, s.seed)
                    .map_err(|e| e.to_string())?;
            if s.csv {
                println!("tm_s,r_kbits,gamma,power_mw");
                for p in &points {
                    println!(
                        "{:.6},{:.2},{:.2},{:.4}",
                        p.evaluation.tm_seconds,
                        p.evaluation.r_total_kbits(),
                        p.evaluation.gamma,
                        p.evaluation.power_mw
                    );
                }
            } else {
                println!("{} mappings (uniform s={}):", points.len(), s.scale);
                for p in points.iter().take(20) {
                    println!(
                        "  TM {:.3} s  R {:.1} kbit  Gamma {:.3e}   {}",
                        p.evaluation.tm_seconds,
                        p.evaluation.r_total_kbits(),
                        p.evaluation.gamma,
                        p.mapping
                    );
                }
                if points.len() > 20 {
                    println!("  ... ({} more; use --csv for all)", points.len() - 20);
                }
            }
            Ok(())
        }
        Command::Generate(g) => {
            let app = cli::AppSpec::Random {
                tasks: g.tasks,
                seed: g.seed,
            }
            .build()
            .map_err(|e| e.to_string())?;
            if g.dot {
                print!("{}", app.graph().to_dot());
            } else {
                println!(
                    "{}: {} tasks, {} edges, deadline {:.1} s",
                    app.name(),
                    app.graph().len(),
                    app.graph().edges().len(),
                    app.deadline_s()
                );
                println!(
                    "total computation: {} cycles; critical path: {} cycles",
                    app.graph().total_computation(),
                    app.graph().critical_path()
                );
                println!(
                    "register model: {} blocks, duplication-free union {:.1} kbit",
                    app.registers().blocks().len(),
                    app.registers().total_union().as_kbits()
                );
            }
            Ok(())
        }
        Command::Campaign(c) => run_campaign(&c),
        Command::Report(r) => run_report(&r),
        Command::Serve(s) => run_serve(&s),
        Command::Worker(w) => run_worker_cmd(&w),
        Command::Daemon(d) => run_daemon_cmd(&d),
        Command::Submit(s) => run_submit(&s),
        Command::Status(c) => {
            println!(
                "{}",
                sea_dse::serve::status(&c.connect).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Cancel(c) => {
            eprintln!(
                "{}",
                sea_dse::serve::cancel(&c.connect, c.id).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Stop(c) => {
            eprintln!(
                "{}",
                sea_dse::serve::stop(&c.connect).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::CacheCmd(c) => run_cache_cmd(&c),
        Command::Recovery(r) => {
            let (app, arch, mapping, scaling) = build_design(&r.design)?;
            let ctx = EvalContext::new(&app, &arch).with_ser(SerModel::calibrated(r.design.ser));
            let eval = ctx
                .evaluate(&mapping, &scaling)
                .map_err(|e| e.to_string())?;
            let policy = match r.policy {
                PolicySpec::None => RecoveryPolicy::None,
                PolicySpec::ReExec { coverage } => RecoveryPolicy::ReExecution {
                    detection_coverage: coverage,
                },
                PolicySpec::Checkpoint {
                    coverage,
                    interval_s,
                    save_s,
                } => RecoveryPolicy::Checkpointing {
                    detection_coverage: coverage,
                    interval_s,
                    save_cost_s: save_s,
                },
            };
            let counts: Vec<usize> = (0..mapping.n_cores())
                .map(|c| mapping.count_on(sea_dse::arch::CoreId::new(c)))
                .collect();
            let rep = recovery::analyze(
                &eval,
                &counts,
                app.mode().iterations(),
                app.deadline_s(),
                policy,
            );
            println!("design:   {mapping} @ {scaling}");
            println!("Gamma:    {:.4e} expected SEUs", eval.gamma);
            println!(
                "recovery: {:.2e} recovered, {:.2e} residual, overhead {:.4} s",
                rep.expected_recoveries, rep.residual_gamma, rep.expected_overhead_s
            );
            println!(
                "deadline: TM {:.4} s -> {:.4} s with recovery ({})",
                eval.tm_seconds,
                rep.tm_with_recovery_s,
                if rep.meets_deadline_with_recovery {
                    "met"
                } else {
                    "MISSED"
                }
            );
            Ok(())
        }
    }
}

/// Resolves `--spec`/`--builtin` to campaign spec text — shared by the
/// local loaders and `submit`, which ships the text verbatim so the
/// daemon parses exactly what a local run would.
fn spec_source(spec_path: Option<&str>, builtin: Option<&str>) -> Result<String, String> {
    match (spec_path, builtin) {
        (Some(path), _) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read campaign spec `{path}`: {e}")),
        (None, Some(name)) => match builtin_campaigns::builtin(name) {
            Some(b) => Ok(b.source.to_string()),
            None => {
                let names: Vec<&str> = builtin_campaigns::builtins()
                    .iter()
                    .map(|b| b.name)
                    .collect();
                Err(format!(
                    "unknown built-in campaign `{name}` (available: {})",
                    names.join(", ")
                ))
            }
        },
        (None, None) => unreachable!("validated at parse time"),
    }
}

/// Loads and expands a campaign from `--spec`/`--builtin`, applying a
/// `--budget` override — shared by `campaign` and `serve`.
fn load_campaign(
    spec_path: Option<&str>,
    builtin: Option<&str>,
    budget: Option<sea_dse::campaign::BudgetSpec>,
) -> Result<sea_dse::campaign::Campaign, String> {
    let source = spec_source(spec_path, builtin)?;
    let mut campaign = sea_dse::campaign::parse_campaign(&source).map_err(|e| e.to_string())?;
    if let Some(budget) = budget {
        campaign.budget = budget;
        for scenario in &mut campaign.scenarios {
            scenario.budget = None;
        }
    }
    Ok(campaign)
}

/// The format-selected sink: progress to stderr, final report to stdout.
fn make_sink(format: OutputFormat) -> Box<dyn Sink> {
    match format {
        OutputFormat::Human => Box::new(HumanSink::new(std::io::stderr(), std::io::stdout())),
        OutputFormat::Csv => Box::new(CsvSink::new(std::io::stderr(), std::io::stdout())),
        OutputFormat::Jsonl => Box::new(JsonlSink::new(std::io::stderr(), std::io::stdout())),
    }
}

fn run_campaign(c: &CampaignArgs) -> Result<(), String> {
    if c.list_builtin {
        println!("built-in campaigns (sea-dse campaign --builtin <name>):");
        for b in builtin_campaigns::builtins() {
            println!("  {:<12} {}", b.name, b.description);
        }
        return Ok(());
    }
    let campaign = load_campaign(c.spec_path.as_deref(), c.builtin.as_deref(), c.budget)?;
    let units = campaign.expand();
    let jobs = c.jobs.unwrap_or_else(sea_dse::opt::default_jobs);
    eprintln!(
        "campaign `{}`: {} units on {} worker(s)",
        campaign.name,
        units.len(),
        jobs
    );
    // Persistence layers: the content-addressed result cache (opt-in via
    // --cache or SEA_CACHE; zero filesystem writes otherwise) and the
    // write-ahead journal behind --resume.
    let cache = Cache::resolve(c.cache_dir.as_deref())
        .map_err(|e| format!("cannot open the result cache: {e}"))?;
    let mut plan = match &c.resume {
        Some(path) => {
            let plan = open_journal(std::path::Path::new(path), &campaign.name, &units)
                .map_err(|e| e.to_string())?;
            if plan.resumed > 0 {
                eprintln!(
                    "resume: {} of {} units restored from `{path}`",
                    plan.resumed,
                    units.len()
                );
            }
            Some(plan)
        }
        None => None,
    };
    // Progress streams to stderr in completion order; the final report
    // goes to stdout in enumeration order (byte-identical for any --jobs,
    // any cache state and any resume point).
    let mut sink = make_sink(c.format);
    let mut config = RunConfig::new(jobs);
    config.cache = cache.as_ref();
    if let Some(mut plan) = plan.take() {
        config.prefilled = std::mem::take(&mut plan.prefilled);
        config.journal = Some(plan.writer);
    }
    let outcome = run_units_configured(&units, config, sink.as_mut()).map_err(|e| e.to_string())?;
    if cache.is_some() {
        eprintln!(
            "cache: {} hit(s), {} evaluated",
            outcome.cache_hits, outcome.executed
        );
    }
    pruning_summary(&outcome.units);
    if c.report_aggregates {
        sink.report_aggregates(&outcome.records());
    }
    // A truncated final report (full disk, closed pipe) must not exit 0.
    if let Some(e) = sink.take_io_error() {
        return Err(format!("writing the campaign report failed: {e}"));
    }
    Ok(())
}

/// `sea-dse report <journal|cache-dir>`: offline analytics — rebuild the
/// flat records from a persisted artifact and render the per-unit report
/// plus the aggregate sections, byte-identical to the live
/// `campaign --report-aggregates` output, with zero units re-evaluated.
fn run_report(r: &ReportArgs) -> Result<(), String> {
    let source = std::path::Path::new(&r.source);
    let records = if source.is_dir() {
        // Cache::open on an existing directory creates nothing.
        let cache = Cache::open(source)
            .map_err(|e| format!("cannot open cache directory `{}`: {e}", r.source))?;
        let (records, skipped) = cache
            .records()
            .map_err(|e| format!("cannot read cache directory `{}`: {e}", r.source))?;
        eprintln!(
            "report: {} record(s) from cache `{}`{}",
            records.len(),
            r.source,
            if skipped > 0 {
                format!(
                    ", {skipped} corrupt entr{} skipped",
                    if skipped == 1 { "y" } else { "ies" }
                )
            } else {
                String::new()
            }
        );
        records
    } else if source.is_file() {
        let (header, records) = read_journal_records(source).map_err(|e| e.to_string())?;
        eprintln!(
            "report: {} of {} unit(s) from journal `{}` (campaign `{}`)",
            records.len(),
            header.units,
            r.source,
            header.name
        );
        records
    } else {
        return Err(format!(
            "`{}` is neither a journal file nor a cache directory",
            r.source
        ));
    };
    let mut sink = make_sink(r.format);
    sink.finish(&records);
    sink.report_aggregates(&records);
    if let Some(e) = sink.take_io_error() {
        return Err(format!("writing the report failed: {e}"));
    }
    Ok(())
}

/// Folds the optimizer's bound-pruning counters over every design
/// payload this process actually executed (cache-restored and resumed
/// units are record-only, so they contribute nothing) and reports them
/// on **stderr** — the stdout report must stay byte-identical whether
/// or not pruning fired.
fn pruning_summary(units: &[sea_dse::campaign::UnitOutcome]) {
    let (pruned, searched) = units
        .iter()
        .filter_map(sea_dse::campaign::UnitOutcome::result)
        .filter_map(|r| r.payload.outcome())
        .fold((0usize, 0usize), |(p, s), o| {
            (p + o.scalings_pruned(), s + o.scalings_searched())
        });
    if pruned + searched > 0 {
        eprintln!("pruning: {pruned} scaling(s) pruned by TM bound, {searched} searched");
    }
}

fn run_serve(s: &ServeArgs) -> Result<(), String> {
    let campaign = load_campaign(s.spec_path.as_deref(), s.builtin.as_deref(), s.budget)?;
    let units = campaign.expand();
    let listener = std::net::TcpListener::bind(&s.listen)
        .map_err(|e| format!("cannot listen on `{}`: {e}", s.listen))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the listen address: {e}"))?;
    // The bound address goes to stderr in a fixed format so scripts can
    // discover an ephemeral port (`--listen 127.0.0.1:0`).
    eprintln!(
        "serve `{}`: {} units, listening on {bound}",
        campaign.name,
        units.len()
    );
    let cache = Cache::resolve(s.cache_dir.as_deref())
        .map_err(|e| format!("cannot open the result cache: {e}"))?;
    let mut plan = match &s.resume {
        Some(path) => {
            let plan = open_journal(std::path::Path::new(path), &campaign.name, &units)
                .map_err(|e| e.to_string())?;
            if plan.resumed > 0 {
                eprintln!(
                    "resume: {} of {} units restored from `{path}`",
                    plan.resumed,
                    units.len()
                );
            }
            Some(plan)
        }
        None => None,
    };
    let mut sink = make_sink(s.format);
    let mut config = RunConfig::new(1);
    config.cache = cache.as_ref();
    if let Some(mut plan) = plan.take() {
        config.prefilled = std::mem::take(&mut plan.prefilled);
        config.journal = Some(plan.writer);
    }
    let mut serve_config = sea_dse::dist::ServeConfig::new(config);
    serve_config.heartbeat_timeout = std::time::Duration::from_secs(s.timeout_s);
    let outcome = sea_dse::dist::serve_units(&listener, &units, serve_config, sink.as_mut())
        .map_err(|e| e.to_string())?;
    if cache.is_some() {
        eprintln!(
            "cache: {} hit(s), {} dispatched",
            outcome.cache_hits, outcome.executed
        );
    }
    pruning_summary(&outcome.units);
    if let Some(e) = sink.take_io_error() {
        return Err(format!("writing the campaign report failed: {e}"));
    }
    Ok(())
}

fn run_daemon_cmd(d: &DaemonArgs) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(&d.listen)
        .map_err(|e| format!("cannot listen on `{}`: {e}", d.listen))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the listen address: {e}"))?;
    // Same fixed discovery format as `serve` (scripts grep for it).
    eprintln!("daemon: listening on {bound}");
    let mut config = sea_dse::serve::DaemonConfig::new();
    config.cache = Cache::resolve(d.cache_dir.as_deref())
        .map_err(|e| format!("cannot open the result cache: {e}"))?;
    if let Some(dir) = &d.journal_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create journal directory `{dir}`: {e}"))?;
        config.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    config.heartbeat_timeout = std::time::Duration::from_secs(d.timeout_s);
    let report = sea_dse::serve::run_daemon(&listener, &config).map_err(|e| e.to_string())?;
    // The shutdown summary (per-worker fleet stats included) goes to
    // stderr like all progress output.
    eprintln!(
        "daemon: stopped — {} campaign(s) ({} complete, {} cancelled), {} unit(s) evaluated, {} deduped",
        report.campaigns, report.completed, report.cancelled, report.evaluated, report.deduped
    );
    for (id, w) in &report.workers {
        eprintln!(
            "  worker #{id}: {} unit(s) completed, {} cache hit(s), {} error(s), mean {:.1} ms/unit",
            w.completed,
            w.cache_hits,
            w.errors,
            w.mean_unit_ms()
        );
    }
    Ok(())
}

fn run_submit(s: &SubmitArgs) -> Result<(), String> {
    let spec = spec_source(s.spec_path.as_deref(), s.builtin.as_deref())?;
    if s.watch {
        // Streamed records are progress (stderr); the final report bytes
        // go to stdout alone, cmp-able against a local
        // `campaign --format jsonl` run of the same spec.
        let mut records = std::io::stderr();
        let mut report = std::io::stdout();
        let outcome = sea_dse::serve::submit_watch(&s.connect, &spec, &mut records, &mut report)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "submit: campaign {} complete ({} unit(s), spec hash {})",
            outcome.campaign_id, outcome.n_units, outcome.spec_hash
        );
    } else {
        let outcome = sea_dse::serve::submit(&s.connect, &spec).map_err(|e| e.to_string())?;
        println!(
            "campaign {} accepted: {} unit(s), spec hash {}",
            outcome.campaign_id, outcome.n_units, outcome.spec_hash
        );
    }
    Ok(())
}

fn run_worker_cmd(w: &WorkerArgs) -> Result<(), String> {
    let cache = Cache::resolve(w.cache_dir.as_deref())
        .map_err(|e| format!("cannot open the result cache: {e}"))?;
    let config = sea_dse::dist::WorkerConfig {
        cache: cache.as_ref(),
        inner_jobs: w.jobs.unwrap_or_else(sea_dse::opt::default_jobs),
        connect_retry: std::time::Duration::from_secs(w.retry_s),
        ..sea_dse::dist::WorkerConfig::default()
    };
    eprintln!("worker: connecting to {}", w.connect);
    let report = sea_dse::dist::run_worker(&w.connect, &config).map_err(|e| e.to_string())?;
    eprintln!(
        "worker: done — {} unit(s) completed ({} from the local cache)",
        report.completed, report.cache_hits
    );
    Ok(())
}

fn run_cache_cmd(c: &CacheArgs) -> Result<(), String> {
    // Maintenance is read/destroy-only: never *create* the directory
    // (Cache::resolve would), or a typo'd --dir silently reports a
    // perpetually clean empty cache instead of erroring.
    let dir = c
        .dir
        .clone()
        .filter(|s| !s.is_empty())
        .or_else(|| {
            std::env::var(sea_dse::campaign::CACHE_ENV)
                .ok()
                .filter(|s| !s.is_empty())
        })
        .ok_or_else(|| "no cache directory: pass --dir <dir> or set SEA_CACHE".to_string())?;
    if !std::path::Path::new(&dir).is_dir() {
        return Err(format!("cache directory `{dir}` does not exist"));
    }
    let cache =
        Cache::open(&dir).map_err(|e| format!("cannot open cache directory `{dir}`: {e}"))?;
    match c.action {
        CacheAction::Stats => {
            let survey = cache.survey().map_err(|e| e.to_string())?;
            let total_bytes: u64 = survey.iter().map(|e| e.bytes).sum();
            let corrupt = survey
                .iter()
                .filter(|e| matches!(e.health, EntryHealth::Corrupt(_)))
                .count();
            let mut by_kind: std::collections::BTreeMap<&str, usize> =
                std::collections::BTreeMap::new();
            for entry in &survey {
                if let EntryHealth::Ok { kind } = &entry.health {
                    *by_kind.entry(kind.as_str()).or_default() += 1;
                }
            }
            println!("cache {}", cache.dir().display());
            println!("entries:  {}", survey.len());
            println!("bytes:    {total_bytes}");
            println!("corrupt:  {corrupt}");
            for (kind, count) in by_kind {
                println!("  {kind:<14} {count}");
            }
            Ok(())
        }
        CacheAction::Verify => {
            let survey = cache.survey().map_err(|e| e.to_string())?;
            let mut corrupt = 0usize;
            for entry in &survey {
                if let EntryHealth::Corrupt(reason) = &entry.health {
                    corrupt += 1;
                    println!("CORRUPT {}: {reason}", entry.path.display());
                    if c.delete_corrupt {
                        std::fs::remove_file(&entry.path)
                            .map_err(|e| format!("cannot delete {}: {e}", entry.path.display()))?;
                    }
                }
            }
            println!(
                "verified {} entr{}: {} ok, {corrupt} corrupt{}",
                survey.len(),
                if survey.len() == 1 { "y" } else { "ies" },
                survey.len() - corrupt,
                if c.delete_corrupt && corrupt > 0 {
                    " (deleted)"
                } else {
                    ""
                }
            );
            // Corrupt entries found-but-kept exit nonzero so scripts notice.
            if corrupt > 0 && !c.delete_corrupt {
                return Err(format!(
                    "{corrupt} corrupt entr{} (re-run with --delete-corrupt to remove)",
                    if corrupt == 1 { "y" } else { "ies" }
                ));
            }
            Ok(())
        }
        CacheAction::Prune => {
            const DAY: f64 = 86_400.0;
            // Saturate absurd ages instead of letting from_secs_f64 panic
            // on out-of-range floats — an enormous --max-age-days simply
            // prunes nothing.
            let max_age = c.max_age_days.map(|d| {
                std::time::Duration::try_from_secs_f64(d * DAY).unwrap_or(std::time::Duration::MAX)
            });
            let max_bytes = c.max_size_mib.map(|m| m.saturating_mul(1024 * 1024));
            let outcome = cache.prune(max_age, max_bytes).map_err(|e| e.to_string())?;
            println!(
                "pruned {} of {} entr{}: freed {} bytes, {} entr{} ({} bytes) kept",
                outcome.deleted,
                outcome.scanned,
                if outcome.scanned == 1 { "y" } else { "ies" },
                outcome.freed_bytes,
                outcome.kept,
                if outcome.kept == 1 { "y" } else { "ies" },
                outcome.kept_bytes
            );
            Ok(())
        }
    }
}

fn config_of(a: &OptimizeArgs) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::paper(a.cores).with_levels(cli::level_set(a.levels));
    cfg.budget = if a.paper_budget {
        SearchBudget::thorough()
    } else {
        SearchBudget::fast()
    };
    cfg.seed = a.seed;
    if let Some(jobs) = a.jobs {
        cfg.jobs = jobs;
    }
    cfg.selection = match a.selection {
        cli::SelectionSpec::Default => SelectionPolicy::PowerGammaProduct,
        cli::SelectionSpec::Power => SelectionPolicy::PowerFirst { tolerance: 0.05 },
        cli::SelectionSpec::Gamma => SelectionPolicy::GammaFirst,
    };
    cfg
}

fn build_design(
    d: &DesignArgs,
) -> Result<
    (
        sea_dse::taskgraph::Application,
        Architecture,
        Mapping,
        ScalingVector,
    ),
    String,
> {
    let app = d.app.build().map_err(|e| e.to_string())?;
    let arch = Architecture::arm7_calibrated(d.cores, cli::level_set(3));
    let groups: Vec<&[usize]> = d.groups.iter().map(Vec::as_slice).collect();
    let mapping = Mapping::from_groups(&groups, d.cores).map_err(|e| e.to_string())?;
    if mapping.n_tasks() != app.graph().len() {
        return Err(format!(
            "groups cover {} tasks but the application has {}",
            mapping.n_tasks(),
            app.graph().len()
        ));
    }
    let scaling = ScalingVector::try_new(d.scaling.clone(), &arch).map_err(|e| e.to_string())?;
    Ok((app, arch, mapping, scaling))
}

fn print_outcome(out: &OptimizationOutcome, csv: bool) {
    if csv {
        println!("scaling,mapping,power_mw,tm_s,r_kbits,gamma,feasible");
        for o in &out.explored {
            if let Some(p) = &o.best {
                println!(
                    "{},\"{}\",{:.4},{:.6},{:.2},{:.2},{}",
                    p.scaling,
                    p.mapping,
                    p.evaluation.power_mw,
                    p.evaluation.tm_seconds,
                    p.evaluation.r_total_kbits(),
                    p.evaluation.gamma,
                    o.feasible
                );
            }
        }
        return;
    }
    let b = &out.best;
    println!("best design:");
    println!("  scaling: {}", b.scaling);
    println!("  mapping: {}", b.mapping);
    println!("  P = {:.3} mW", b.evaluation.power_mw);
    println!("  TM = {:.4} s", b.evaluation.tm_seconds);
    println!("  R = {:.1} kbit/cycle", b.evaluation.r_total_kbits());
    println!("  Gamma = {:.4e}", b.evaluation.gamma);
    println!(
        "explored {} scalings with {} evaluations",
        out.explored.len(),
        out.total_evaluations
    );
    // stderr, like all progress: stdout is the machine-readable result.
    if out.scalings_pruned() > 0 {
        eprintln!(
            "pruning: {} of {} scaling(s) pruned by TM bound",
            out.scalings_pruned(),
            out.explored.len()
        );
    }
}
