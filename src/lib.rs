//! `sea-dse` — umbrella crate for the DATE 2010 reproduction
//! *"Soft Error-Aware Design Optimization of Low Power and Time-Constrained
//! Embedded Systems"* (Shafik, Al-Hashimi, Chakrabarty).
//!
//! This crate re-exports the workspace members under stable module names so
//! downstream users can depend on a single crate:
//!
//! * [`taskgraph`] — application task graphs, register-sharing models,
//!   MPEG-2 / Fig. 8 presets, random workload generator.
//! * [`arch`] — MPSoC architecture, ARM7TDMI DVS levels, power and SER
//!   models.
//! * [`sched`] — mapping, list scheduling, and the analytic `TM`/`R`/`Γ`
//!   metrics of eqs. (3)–(8).
//! * [`sim`] — discrete-event MPSoC simulator with Poisson SEU fault
//!   injection (the SystemC substitute).
//! * [`opt`] — the proposed optimization: `nextScaling`, `InitialSEAMapping`,
//!   `OptimizedMapping`, and the iterative-assessment driver.
//! * [`baselines`] — simulated-annealing mappers for the soft error-unaware
//!   experiments Exp:1–Exp:3 and the random-mapping sweep of Fig. 3.
//! * [`campaign`] — declarative multi-scenario campaigns: spec grammar,
//!   deterministic cross-scenario worker pool, streaming result sinks.
//! * [`dist`] — distributed campaigns over TCP: coordinator, workers,
//!   and the length-prefixed frame protocol between them.
//! * [`serve`] — the multi-campaign coordinator daemon: wire-submitted
//!   campaigns, fair scheduling over a shared worker fleet,
//!   cross-campaign dedupe and live result streaming.
//! * [`experiments`] — harnesses regenerating every table and figure,
//!   defined as campaign unit lists.
//!
//! # Quickstart
//!
//! ```
//! use sea_dse::opt::{DesignOptimizer, OptimizerConfig};
//! use sea_dse::taskgraph::mpeg2;
//!
//! let app = mpeg2::application();
//! let config = OptimizerConfig::fast(4); // four cores, small search budget
//! let outcome = DesignOptimizer::new(config).optimize(&app).expect("feasible");
//! println!(
//!     "P = {:.2} mW, Gamma = {:.3e}, TM = {:.2} s",
//!     outcome.best.evaluation.power_mw,
//!     outcome.best.evaluation.gamma,
//!     outcome.best.evaluation.tm_seconds
//! );
//! ```

pub mod cli;

pub use sea_arch as arch;
pub use sea_baselines as baselines;
pub use sea_campaign as campaign;
pub use sea_dist as dist;
pub use sea_experiments as experiments;
pub use sea_opt as opt;
pub use sea_sched as sched;
pub use sea_serve as serve;
pub use sea_sim as sim;
pub use sea_taskgraph as taskgraph;
