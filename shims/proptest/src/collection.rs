//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec`](fn@vec): an exact `usize` or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.rng().gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for vectors of `element` values with length in `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
