//! The [`Strategy`] trait and the primitive strategies of the shim.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values spanning many magnitudes.
        let mantissa = rng.rng().gen_range(-1.0f64..1.0);
        let exp = rng.rng().gen_range(-64i32..64);
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
