//! Deterministic RNG and per-test configuration for the proptest shim.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG strategies draw from; deterministic per test name so a failing
/// case reproduces on every run.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name (FNV-1a hash), so distinct properties explore
    /// distinct sequences but each property is stable run-to-run.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
