//! `proptest::option` — strategies for optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Strategy returned by [`of`]: yields `None` about a quarter of the
/// time (matching real proptest's default `Some` probability bias
/// towards populated values), otherwise `Some` of the inner strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Wraps a strategy to produce `Option`s of its values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
