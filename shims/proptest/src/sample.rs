//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Build from raw entropy (used by `any::<Index>()`).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Resolve against a collection of length `len` (must be non-zero).
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}
