//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace-local
//! shim provides exactly the surface the `sea-*` crates use:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256** seeded via
//!   SplitMix64), stable across platforms and releases of this workspace.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen_range`] over half-open and inclusive integer and `f64`
//!   ranges, plus [`Rng::gen_bool`].
//!
//! The statistical quality (equidistribution of xoshiro256**) is more than
//! adequate for the Monte-Carlo fault injection and simulated annealing done
//! here; the API intentionally panics on empty ranges, like real `rand`.

/// Core RNG operations: a source of uniformly distributed 32/64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array) accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 like real `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut state);
            let bytes = w.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`. Panics if `low >= high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 span cannot occur for <=64-bit types.
                    unreachable!("inclusive span overflow");
                }
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample from `[0, span)` using rejection to avoid modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        if span64.is_power_of_two() {
            return (rng.next_u64() & (span64 - 1)) as u128;
        }
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // Spans wider than 64 bits only arise from signed 64-bit extremes;
        // two words give an unbiased-enough 128-bit sample for this shim.
        let hi = (rng.next_u64() as u128) << 64;
        let v = hi | rng.next_u64() as u128;
        v % span
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        // 53 random mantissa bits -> u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + u * (high - low);
        // Floating rounding can land exactly on `high`; nudge back inside.
        if v >= high {
            f64::from_bits(high.to_bits() - 1)
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range {low}..={high}");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256**.
    ///
    /// Not cryptographically secure (neither determinism-critical simulation
    /// nor annealing needs that); sequence is stable forever for a fixed
    /// seed, which the workspace's reproducibility tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_all_values_of_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        fn draw<R: super::Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let r = &mut rng;
        assert!(draw(r) < 100);
    }
}
