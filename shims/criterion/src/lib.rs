//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim keeps every
//! `benches/*.rs` target compiling (`cargo bench --no-run`) and gives
//! `cargo bench` meaningful output: each `bench_function` is warmed up and
//! then timed over `sample_size` samples with mean/min/max wall-clock
//! reporting. No statistics beyond that — swap in real criterion by
//! repointing `[workspace.dependencies] criterion` at the registry.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench statistics collected for the machine-readable summary.
#[derive(Debug, Clone)]
struct BenchStat {
    id: String,
    min_ns: u128,
    median_ns: u128,
    samples: usize,
}

/// Process-wide result registry feeding [`write_summary`]. A bench
/// binary runs its groups sequentially, so a plain mutex suffices.
static RESULTS: Mutex<Vec<BenchStat>> = Mutex::new(Vec::new());

/// How `iter_batched` amortizes setup; only a compile-compatibility token
/// here (the shim always re-runs setup per iteration, outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Collected per-sample durations for the enclosing bench.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, one sample per call, after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup runs untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

/// Shim benchmark manager mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            // Keep shim warm-ups short even when configs ask for seconds.
            warm_up: self.warm_up_time.min(Duration::from_millis(250)),
            timings: Vec::new(),
        };
        f(&mut b);
        report(id, &b.timings);
        self
    }
}

fn report(id: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().expect("non-empty");
    let max = timings.iter().max().expect("non-empty");
    let mut sorted: Vec<Duration> = timings.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
    RESULTS
        .lock()
        .expect("bench registry poisoned")
        .push(BenchStat {
            id: id.to_string(),
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            samples: timings.len(),
        });
}

/// Writes every benchmark recorded so far as one JSON object to the path
/// named by the `SEA_BENCH_JSON` environment variable (one file per bench
/// binary — run targets separately and merge, e.g. with `jq -s`). A no-op
/// when the variable is unset, so plain `cargo bench` stays file-free.
/// Called automatically by [`criterion_main!`]; bench targets with a
/// hand-written `main` call it last.
pub fn write_summary(target: &str) {
    if let Ok(path) = std::env::var("SEA_BENCH_JSON") {
        if let Err(e) = write_summary_to(std::path::Path::new(&path), target) {
            eprintln!("warning: cannot write bench summary to `{path}`: {e}");
        }
    }
}

/// [`write_summary`] with an explicit path (and no env coupling, for tests).
///
/// # Errors
///
/// Propagates the underlying `std::fs::write` failure.
pub fn write_summary_to(path: &std::path::Path, target: &str) -> std::io::Result<()> {
    let results = RESULTS.lock().expect("bench registry poisoned");
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"target\": {},\n  \"unit\": \"ns\",\n  \"benches\": [",
        json_string(target)
    ));
    for (i, s) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"min_ns\": {}, \"median_ns\": {}, \"samples\": {}}}",
            json_string(&s.id),
            s.min_ns,
            s.median_ns,
            s.samples
        ));
    }
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out)
}

/// Minimal JSON string encoder (bench ids are plain ASCII, but stay safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a bench group: both criterion invocation forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the bench binary's `main`, running each group in order, then
/// writing the machine-readable summary (when `SEA_BENCH_JSON` is set).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_summary(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert!(runs >= 3, "expected >= 3 runs, got {runs}");
    }

    #[test]
    fn summary_json_records_min_and_median() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("shim/json \"quoted\"", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
        });
        let path = std::env::temp_dir().join(format!("sea-bench-{}.json", std::process::id()));
        write_summary_to(&path, "shim_target").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"target\": \"shim_target\""));
        assert!(text.contains("\"id\": \"shim/json \\\"quoted\\\"\""));
        assert!(text.contains("\"min_ns\": "));
        assert!(text.contains("\"median_ns\": "));
        assert!(text.contains("\"samples\": 5"));
        // min never exceeds median (both come from the same sorted set).
        let grab = |key: &str| -> u128 {
            let i = text.find(key).unwrap() + key.len();
            text[i..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert!(grab("\"min_ns\": ") <= grab("\"median_ns\": "));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0usize;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups >= 4);
    }
}
