//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim keeps every
//! `benches/*.rs` target compiling (`cargo bench --no-run`) and gives
//! `cargo bench` meaningful output: each `bench_function` is warmed up and
//! then timed over `sample_size` samples with mean/min/max wall-clock
//! reporting. No statistics beyond that — swap in real criterion by
//! repointing `[workspace.dependencies] criterion` at the registry.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only a compile-compatibility token
/// here (the shim always re-runs setup per iteration, outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Collected per-sample durations for the enclosing bench.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, one sample per call, after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup runs untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

/// Shim benchmark manager mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            // Keep shim warm-ups short even when configs ask for seconds.
            warm_up: self.warm_up_time.min(Duration::from_millis(250)),
            timings: Vec::new(),
        };
        f(&mut b);
        report(id, &b.timings);
        self
    }
}

fn report(id: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().expect("non-empty");
    let max = timings.iter().max().expect("non-empty");
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a bench group: both criterion invocation forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert!(runs >= 3, "expected >= 3 runs, got {runs}");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0usize;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups >= 4);
    }
}
