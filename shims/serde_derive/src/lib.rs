//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives serde traits purely as forward-looking metadata —
//! nothing bounds on `serde::Serialize` today — so these derives only need
//! to (a) exist and (b) register the `#[serde(...)]` helper attribute so
//! container attributes like `#[serde(transparent)]` parse. They emit no
//! code; the shim `serde` crate's traits have no required items, and real
//! impls can be generated here later without touching call sites.

use proc_macro::TokenStream;

/// Parse the derived type's name and generics, emitting an empty trait impl.
fn empty_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    // Tokens look like: (attrs)* (pub)? (struct|enum) Name (<generics>)? ...
    // We only need `Name` and whether a generic list follows. Generic types
    // get no impl (safe: the shim traits are never used as bounds), concrete
    // types get `impl serde::Trait for Name {}` so `T: Serialize` holds if a
    // future refactor adds such a bound on a concrete type.
    let mut tokens = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(tok) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(proc_macro::TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };
    // A `<` right after the name means the type is generic; skip those.
    if let Some(proc_macro::TokenTree::Punct(p)) = tokens.next() {
        if p.as_char() == '<' {
            return TokenStream::new();
        }
    }
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .unwrap_or_default()
}

/// Derive the shim `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize")
}

/// Derive the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize")
}
