//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access; the workspace derives
//! `Serialize`/`Deserialize` as forward-looking metadata only (no code
//! bounds on the traits, no serializer in the dependency tree). This shim
//! keeps the derive syntax — including `#[serde(transparent)]`-style helper
//! attributes — compiling, so the real serde can be dropped in later by
//! swapping one `[workspace.dependencies]` path for a registry version.

/// Marker stand-in for `serde::Serialize`; no required items.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; the lifetime mirrors the real
/// trait so signatures written against it stay source-compatible.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
