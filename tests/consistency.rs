//! Consistency tests between the analytic stack (`sea-sched`) and the
//! measured stack (`sea-sim`), across workload families and execution
//! modes. The optimizer trusts the list scheduler; these tests pin how far
//! that trust may drift from the event-driven ground truth.

use sea_dse::arch::{Architecture, CoreId, LevelSet, ScalingVector};
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sched::Mapping;
use sea_dse::sim::simulate_execution;
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::{mpeg2, presets, Application, ExecutionMode};

fn round_robin(app: &Application, cores: usize) -> Mapping {
    Mapping::try_new(
        (0..app.graph().len())
            .map(|i| CoreId::new(i % cores))
            .collect(),
        cores,
    )
    .unwrap()
}

/// The scheduler estimate and the DES measurement stay within a bounded
/// drift on batch random graphs. The two use different dispatch
/// disciplines (global-priority commitment vs. greedy per-core dispatch),
/// so individual instances may diverge in either direction; the contract
/// is a hard per-instance cap plus a small mean drift, and *exact*
/// agreement on per-core busy time (both charge computation plus inbound
/// cross-core communication).
#[test]
fn batch_random_graphs_estimate_vs_measurement() {
    let mut drifts = Vec::new();
    for seed in 0..8 {
        let app = RandomGraphConfig::paper(25).generate(seed).unwrap();
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let mapping = round_robin(&app, 3);
        for s in 1..=3u8 {
            let scaling = ScalingVector::uniform(s, &arch).unwrap();
            let sched = ctx.schedule(&mapping, &scaling).unwrap();
            let trace = simulate_execution(&app, &arch, &mapping, &scaling).unwrap();
            let rel = (trace.tm_seconds - sched.makespan_s()).abs() / sched.makespan_s();
            assert!(
                rel < 0.35,
                "seed {seed} s={s}: sim {} vs sched {} ({rel:.3})",
                trace.tm_seconds,
                sched.makespan_s()
            );
            drifts.push(rel);
            for c in 0..3 {
                let a = trace.busy_s[c];
                let b = sched.busy_per_core()[c];
                assert!((a - b).abs() < 1e-9, "busy mismatch on core {c}");
            }
        }
    }
    let mean = drifts.iter().sum::<f64>() / drifts.len() as f64;
    assert!(mean < 0.12, "mean drift {mean:.3}");
}

/// Pipelined estimates (fill + (I−1)·period) track the event-driven
/// pipeline on the streaming presets.
#[test]
fn pipelined_presets_estimate_vs_measurement() {
    for (app, cores) in [
        (mpeg2::application(), 4usize),
        (presets::jpeg_encoder(), 3),
        (presets::sdr_receiver(), 4),
    ] {
        let arch = Architecture::homogeneous(cores, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        let mapping = round_robin(&app, cores);
        let scaling = ScalingVector::uniform(2, &arch).unwrap();
        let sched = ctx.schedule(&mapping, &scaling).unwrap();
        let trace = simulate_execution(&app, &arch, &mapping, &scaling).unwrap();
        let rel = (trace.tm_seconds - sched.makespan_s()).abs() / sched.makespan_s();
        assert!(
            rel < 0.10,
            "{}: sim {} vs sched {} ({rel:.3})",
            app.name(),
            trace.tm_seconds,
            sched.makespan_s()
        );
    }
}

/// A pipelined application with one iteration is exactly a batch run.
#[test]
fn single_iteration_pipeline_equals_batch() {
    let batch = RandomGraphConfig::paper(15).generate(3).unwrap();
    let pipelined = Application::new(
        "as-pipeline",
        batch.graph().clone(),
        batch.registers().clone(),
        ExecutionMode::Pipelined { iterations: 1 },
        batch.deadline_s(),
    )
    .unwrap();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let mapping = round_robin(&batch, 3);
    let scaling = ScalingVector::all_nominal(&arch);
    let eb = EvalContext::new(&batch, &arch)
        .evaluate(&mapping, &scaling)
        .unwrap();
    let ep = EvalContext::new(&pipelined, &arch)
        .evaluate(&mapping, &scaling)
        .unwrap();
    // The pipelined estimate adds (I-1)*period = 0 on top of the fill pass.
    assert!((eb.tm_seconds - ep.tm_seconds).abs() < 1e-12);
    assert!((eb.gamma - ep.gamma).abs() / eb.gamma < 1e-12);
}

/// The CPI overhead slows timing without touching power or the register
/// model, and Γ under whole-run exposure grows with it (longer exposure).
#[test]
fn cpi_overhead_affects_only_timing_dimensions() {
    let app = mpeg2::application();
    let ideal = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let slowed = Architecture::homogeneous(4, LevelSet::arm7_three_level())
        .with_cpi_overhead(1.9)
        .unwrap();
    let mapping = round_robin(&app, 4);
    let scaling = ScalingVector::uniform(2, &ideal).unwrap();
    let e1 = EvalContext::new(&app, &ideal)
        .evaluate(&mapping, &scaling)
        .unwrap();
    let e2 = EvalContext::new(&app, &slowed)
        .evaluate(&mapping, &scaling)
        .unwrap();
    assert!((e2.tm_seconds / e1.tm_seconds - 1.9).abs() < 1e-9);
    assert_eq!(e1.r_total, e2.r_total);
    // Whole-run exposure: Γ scales with TM at fixed f and λ.
    assert!((e2.gamma / e1.gamma - 1.9).abs() < 1e-9);
    // Power drops: same energy-relevant activity spread over more time
    // (α f V² with α = busy/TM unchanged, but TM is the busy time here...
    // for a fully-busy bottleneck core α stays 1, others stay equal), so
    // power is in fact *unchanged* for proportionally-slowed cores.
    assert!((e2.power_mw / e1.power_mw - 1.0).abs() < 1e-9);
}

/// Gantt rendering and evaluation agree on per-core content.
#[test]
fn gantt_and_groups_agree() {
    let app = presets::jpeg_encoder();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let mapping = round_robin(&app, 3);
    let scaling = ScalingVector::all_nominal(&arch);
    let sched = ctx.schedule(&mapping, &scaling).unwrap();
    for (core_idx, lane) in sched.per_core().iter().enumerate() {
        for entry in lane {
            assert_eq!(
                mapping.core_of(entry.task).index(),
                core_idx,
                "{} scheduled on the wrong lane",
                entry.task
            );
        }
    }
    let gantt = sched.gantt(40);
    assert_eq!(gantt.lines().count(), 3);
}

/// Presets admit feasible designs through the full optimizer (they exist
/// to be example inputs, not puzzles).
#[test]
fn presets_are_optimizable() {
    use sea_dse::opt::{DesignOptimizer, OptimizerConfig};
    for (app, cores) in [
        (presets::jpeg_encoder(), 3usize),
        (presets::sdr_receiver(), 4),
    ] {
        let out = DesignOptimizer::new(OptimizerConfig::fast(cores))
            .optimize(&app)
            .unwrap_or_else(|e| panic!("{} infeasible: {e}", app.name()));
        assert!(out.best.evaluation.meets_deadline);
        assert!(out.best.mapping.uses_all_cores());
    }
}
