//! Determinism regression tests: the simulator must be a pure function of
//! its seed, and the optimizer a pure function of its configuration —
//! including across worker-thread counts. The optimizer's iterative
//! assessment, the experiment harnesses, and the
//! Monte-Carlo-vs-analytic validation all assume that re-running a seeded
//! run reproduces the exact trace, fault counts and explored designs — a
//! silent nondeterminism (hash-map iteration order, an unseeded RNG path,
//! time-dependent tie-breaking, job-count-dependent chunking) would
//! corrupt every published number without failing any single-run
//! assertion.

use sea_dse::arch::{Architecture, CoreId, LevelSet, ScalingVector};
use sea_dse::campaign::{csv_report, jsonl_report, parse_campaign, run_units, NullSink};
use sea_dse::opt::{DesignOptimizer, OptError, OptimizationOutcome, OptimizerConfig};
use sea_dse::sched::Mapping;
use sea_dse::sim::{simulate_design, SimConfig};
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::{fig8, mpeg2, Application};

#[test]
fn simulate_design_is_deterministic_for_a_fixed_seed() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();

    // Identical execution traces, event for event.
    assert_eq!(a.trace, b.trace);
    // Identical fault injection: totals, per-core breakdown and every
    // materialized SEU event.
    assert_eq!(a.faults, b.faults);
    // The analytic evaluation is RNG-free and must match too.
    assert_eq!(a.analytic.gamma.to_bits(), b.analytic.gamma.to_bits());
    assert_eq!(
        a.analytic.tm_seconds.to_bits(),
        b.analytic.tm_seconds.to_bits()
    );
}

#[test]
fn different_seeds_draw_different_fault_patterns() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(2)).unwrap();

    // Execution is seed-independent (dispatch is deterministic)...
    assert_eq!(a.trace, b.trace);
    // ...but the injected fault sample must actually depend on the seed.
    assert_ne!(a.faults, b.faults);
}

#[test]
fn batch_random_graph_simulation_is_deterministic() {
    let app = RandomGraphConfig::paper(25).generate(7).unwrap();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let mapping = Mapping::try_new(
        (0..app.graph().len()).map(|i| CoreId::new(i % 3)).collect(),
        3,
    )
    .unwrap();
    let scaling = ScalingVector::uniform(2, &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.faults, b.faults);
}

/// Bitwise comparison of two optimization outcomes: best design, explored
/// set (order, per-scaling winners and evaluation counts) and totals.
fn assert_outcomes_identical(a: &OptimizationOutcome, b: &OptimizationOutcome, what: &str) {
    assert_eq!(a.best.mapping, b.best.mapping, "{what}: best mapping");
    assert_eq!(a.best.scaling, b.best.scaling, "{what}: best scaling");
    assert_eq!(
        a.best.evaluation, b.best.evaluation,
        "{what}: best evaluation"
    );
    assert_eq!(
        a.total_evaluations, b.total_evaluations,
        "{what}: total evaluations"
    );
    assert_eq!(a.explored.len(), b.explored.len(), "{what}: explored count");
    for (i, (x, y)) in a.explored.iter().zip(&b.explored).enumerate() {
        assert_eq!(x.scaling, y.scaling, "{what}: explored[{i}] scaling");
        assert_eq!(x.feasible, y.feasible, "{what}: explored[{i}] feasible");
        assert_eq!(
            x.evaluations, y.evaluations,
            "{what}: explored[{i}] evaluations"
        );
        let (bx, by) = (x.best.as_ref().unwrap(), y.best.as_ref().unwrap());
        assert_eq!(bx.mapping, by.mapping, "{what}: explored[{i}] mapping");
        assert_eq!(
            bx.evaluation, by.evaluation,
            "{what}: explored[{i}] evaluation"
        );
    }
}

/// The campaign engine's determinism contract: a campaign's final
/// reports are *byte-identical* for every worker count. The pool
/// work-steals unit indices, so completion order varies wildly across
/// `--jobs` — but units are pure functions of their own fields and the
/// final report is rendered in enumeration order, so the serialized
/// output must not differ by a single byte.
#[test]
fn campaign_reports_are_byte_identical_across_jobs_1_2_8() {
    // All four unit kinds, mixed grids, a derived-seed scenario and an
    // explicit-seed scenario, plus an infeasible corner (8 cores for the
    // 6-task fig8 graph -> too-few-tasks record).
    let spec = "\
name = \"determinism\"
budget = \"fast\"
seed = 77

[scenario]
name = \"opt\"
kind = \"optimize\"
apps = \"mpeg2, fig8\"
cores = \"3,4,8\"

[scenario]
name = \"base\"
kind = \"baseline\"
objectives = \"tm,tmr\"
apps = \"mpeg2\"
cores = \"4\"

[scenario]
name = \"sweep\"
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 25
scales = \"1,2\"
seeds = \"42\"

[scenario]
name = \"sim\"
kind = \"simulate\"
apps = \"mpeg2\"
cores = \"4\"
scaling = \"2,2,3,2\"
groups = \"0,1,2,3,4,5|6,7|8|9,10\"
seeds = \"13\"
";
    let units = parse_campaign(spec).expect("well-formed spec").expand();
    let report_at = |jobs: usize| {
        let results = run_units(&units, jobs, &mut NullSink).expect("campaign runs");
        let records: Vec<_> = results.iter().map(|r| r.record.clone()).collect();
        (jsonl_report(&records), csv_report(&records))
    };
    let (jsonl_1, csv_1) = report_at(1);
    assert!(
        jsonl_1.contains("too-few-tasks"),
        "infeasible corner present"
    );
    for jobs in [2, 8] {
        let (jsonl_n, csv_n) = report_at(jobs);
        assert_eq!(jsonl_1, jsonl_n, "JSONL report differs at jobs={jobs}");
        assert_eq!(csv_1, csv_n, "CSV report differs at jobs={jobs}");
    }
}

/// The parallel engine's core guarantee: `optimize` is a pure function of
/// the configuration — the worker-thread count changes wall-clock only.
/// Chunk partition and search seeds derive from the enumeration index, and
/// the warm-start chain lives within a chunk, so `--jobs 1/2/8` must agree
/// bitwise on the best design, the explored set and every evaluation count.
#[test]
fn optimize_is_identical_across_jobs_1_2_8() {
    let cases: Vec<(&str, Application, usize)> = vec![
        ("mpeg2", mpeg2::application(), 4),
        ("fig8", fig8::application(), 3),
        (
            "random:20:3",
            RandomGraphConfig::paper(20).generate(3).unwrap(),
            4,
        ),
        (
            "random:24:11",
            RandomGraphConfig::paper(24).generate(11).unwrap(),
            4,
        ),
    ];
    for (name, app, cores) in &cases {
        let run = |jobs: usize| {
            DesignOptimizer::new(OptimizerConfig::fast(*cores).with_jobs(jobs)).optimize(app)
        };
        let (r1, r2, r8) = (run(1), run(2), run(8));
        match (&r1, &r2, &r8) {
            (Ok(a), Ok(b), Ok(c)) => {
                assert_outcomes_identical(a, b, &format!("{name} jobs 1 vs 2"));
                assert_outcomes_identical(a, c, &format!("{name} jobs 1 vs 8"));
            }
            (
                Err(OptError::Infeasible {
                    best_tm_seconds: t1,
                    ..
                }),
                Err(OptError::Infeasible {
                    best_tm_seconds: t2,
                    ..
                }),
                Err(OptError::Infeasible {
                    best_tm_seconds: t8,
                    ..
                }),
            ) => {
                // Infeasible runs must agree on the tightest TM found too.
                assert_eq!(t1.to_bits(), t2.to_bits(), "{name}");
                assert_eq!(t1.to_bits(), t8.to_bits(), "{name}");
            }
            _ => panic!("{name}: feasibility disagrees across jobs: {r1:?} / {r2:?} / {r8:?}"),
        }
    }
}
