//! Determinism regression tests: the simulator must be a pure function of
//! its seed. The optimizer's iterative assessment, the experiment
//! harnesses, and the Monte-Carlo-vs-analytic validation all assume that
//! re-running a seeded simulation reproduces the exact trace and fault
//! counts — a silent nondeterminism (hash-map iteration order, an
//! unseeded RNG path, time-dependent tie-breaking) would corrupt every
//! published number without failing any single-run assertion.

use sea_dse::arch::{Architecture, CoreId, LevelSet, ScalingVector};
use sea_dse::sched::Mapping;
use sea_dse::sim::{simulate_design, SimConfig};
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::mpeg2;

#[test]
fn simulate_design_is_deterministic_for_a_fixed_seed() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();

    // Identical execution traces, event for event.
    assert_eq!(a.trace, b.trace);
    // Identical fault injection: totals, per-core breakdown and every
    // materialized SEU event.
    assert_eq!(a.faults, b.faults);
    // The analytic evaluation is RNG-free and must match too.
    assert_eq!(a.analytic.gamma.to_bits(), b.analytic.gamma.to_bits());
    assert_eq!(
        a.analytic.tm_seconds.to_bits(),
        b.analytic.tm_seconds.to_bits()
    );
}

#[test]
fn different_seeds_draw_different_fault_patterns() {
    let app = mpeg2::application();
    let arch = Architecture::homogeneous(4, LevelSet::arm7_three_level());
    let mapping = Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4).unwrap();
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(2)).unwrap();

    // Execution is seed-independent (dispatch is deterministic)...
    assert_eq!(a.trace, b.trace);
    // ...but the injected fault sample must actually depend on the seed.
    assert_ne!(a.faults, b.faults);
}

#[test]
fn batch_random_graph_simulation_is_deterministic() {
    let app = RandomGraphConfig::paper(25).generate(7).unwrap();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let mapping = Mapping::try_new(
        (0..app.graph().len()).map(|i| CoreId::new(i % 3)).collect(),
        3,
    )
    .unwrap();
    let scaling = ScalingVector::uniform(2, &arch).unwrap();

    let a = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    let b = simulate_design(&app, &arch, &mapping, &scaling, &SimConfig::seeded(1)).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.faults, b.faults);
}
