//! Cross-crate integration tests: the full flow from workload construction
//! through optimization to simulation and fault injection.

use sea_dse::arch::{Architecture, LevelSet, ScalingVector};
use sea_dse::baselines::{BaselineOptimizer, Objective};
use sea_dse::opt::{DesignOptimizer, OptimizerConfig};
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sim::{simulate_design, SimConfig};
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::{fig8, mpeg2};

#[test]
fn optimize_then_simulate_mpeg2() {
    let app = mpeg2::application();
    let outcome = DesignOptimizer::new(OptimizerConfig::fast(4))
        .optimize(&app)
        .expect("four-core decoder is feasible");
    let best = &outcome.best;

    // The DES simulator must agree with the analytic evaluation the
    // optimizer used, and fault injection must cluster around Γ.
    let arch = DesignOptimizer::new(OptimizerConfig::fast(4))
        .config()
        .arch
        .clone();
    let report = simulate_design(
        &app,
        &arch,
        &best.mapping,
        &best.scaling,
        &SimConfig::seeded(1),
    )
    .expect("simulation runs");
    let tm_rel =
        (report.trace.tm_seconds - best.evaluation.tm_seconds).abs() / best.evaluation.tm_seconds;
    assert!(tm_rel < 0.05, "simulated vs scheduled TM deviates {tm_rel}");
    let mc_rel = (report.faults.total_experienced as f64 - best.evaluation.gamma).abs()
        / best.evaluation.gamma;
    assert!(mc_rel < 0.1, "MC vs analytic Γ deviates {mc_rel}");
}

#[test]
fn proposed_beats_parallelism_baseline_on_gamma_at_matched_scaling() {
    // The paper's headline claim, end-to-end through the public API.
    let app = mpeg2::application();
    let cfg = OptimizerConfig::fast(4);
    let proposed = DesignOptimizer::new(cfg.clone()).optimize(&app).unwrap();
    let baseline = BaselineOptimizer::new(cfg.clone(), Objective::Parallelism)
        .optimize(&app)
        .unwrap();

    // Evaluate both mappings at the proposed design's scaling.
    let ctx = EvalContext::new(&app, &cfg.arch);
    let e_prop = ctx
        .evaluate(&proposed.best.mapping, &proposed.best.scaling)
        .unwrap();
    let e_base = ctx
        .evaluate(&baseline.best.mapping, &proposed.best.scaling)
        .unwrap();
    assert!(
        e_prop.gamma < e_base.gamma,
        "proposed Γ {} must beat parallelism baseline Γ {}",
        e_prop.gamma,
        e_base.gamma
    );
}

#[test]
fn random_workload_end_to_end() {
    let app = RandomGraphConfig::paper(30).generate(11).unwrap();
    let outcome = DesignOptimizer::new(OptimizerConfig::fast(3))
        .optimize(&app)
        .expect("loose N/2-second deadline is feasible");
    assert!(outcome.best.evaluation.meets_deadline);
    assert!(outcome.best.mapping.uses_all_cores());

    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let report = simulate_design(
        &app,
        &arch,
        &outcome.best.mapping,
        &outcome.best.scaling,
        &SimConfig::seeded(5),
    )
    .expect("simulation runs");
    assert_eq!(
        report.trace.events.len(),
        30,
        "batch mode executes every task once"
    );
}

#[test]
fn fig8_walkthrough_end_to_end() {
    let app = fig8::application();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let scaling = ScalingVector::try_new(vec![1, 2, 2], &arch).unwrap();

    let initial = sea_dse::opt::initial::initial_sea_mapping(&ctx, &scaling).unwrap();
    let initial_eval = ctx.evaluate(&initial, &scaling).unwrap();
    let out = sea_dse::opt::optimized::optimized_mapping(
        &ctx,
        &scaling,
        initial.clone(),
        sea_dse::opt::SearchBudget::fast(),
        7,
    )
    .unwrap();

    // The walkthrough's defining property: the search never worsens the
    // seed, and the t1/t3 co-location survives ("selects t3").
    if initial_eval.meets_deadline {
        assert!(out.evaluation.gamma <= initial_eval.gamma);
    }
    assert!(out.mapping.uses_all_cores());
}

#[test]
fn deadline_sweep_changes_the_design() {
    // Tightening the deadline must push designs toward higher voltage
    // (more power) — the fundamental constraint of the whole paper.
    let app = mpeg2::application();
    let loose = DesignOptimizer::new(OptimizerConfig::fast(4))
        .optimize(&app)
        .unwrap();
    let tight_app = app.with_deadline(app.deadline_s() * 0.55).unwrap();
    let tight = DesignOptimizer::new(OptimizerConfig::fast(4))
        .optimize(&tight_app)
        .unwrap();
    assert!(
        tight.best.evaluation.power_mw >= loose.best.evaluation.power_mw,
        "tight {} mW vs loose {} mW",
        tight.best.evaluation.power_mw,
        loose.best.evaluation.power_mw
    );
}

#[test]
fn scaling_enumeration_is_consistent_with_architecture() {
    for cores in 2..=6 {
        let count = sea_dse::opt::ScalingIter::new(cores, 3).count() as u64;
        assert_eq!(
            count,
            sea_dse::opt::ScalingIter::count_combinations(cores, 3)
        );
    }
}
