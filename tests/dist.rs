//! Distributed-execution integration tests: a localhost coordinator plus
//! in-process TCP workers must be *indistinguishable* from the local
//! thread pool in everything that reaches stdout — final reports
//! byte-identical in all three formats, for any worker count, under
//! worker kills mid-unit, across `--resume` journals and through the
//! shared result cache.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use sea_dse::campaign::{
    csv_report, human_report, jsonl_report, open_journal, parse_campaign, run_units, Cache,
    NullSink, RunConfig, Unit, UnitRecord,
};
use sea_dse::dist::{
    configure_stream, run_distributed_local, run_worker, serve_units, ServeConfig, WorkerConfig,
};
use sea_dse::experiments::campaigns::builtin;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sea-dist-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quickstart_units() -> Vec<Unit> {
    parse_campaign(builtin("quickstart").expect("builtin exists").source)
        .expect("builtin parses")
        .expand()
}

/// All three final reports, rendered from enumeration-order records.
fn reports(records: &[UnitRecord]) -> (String, String, String) {
    (
        human_report(records),
        csv_report(records),
        jsonl_report(records),
    )
}

fn local_golden(units: &[Unit]) -> (String, String, String) {
    let results = run_units(units, 2, &mut NullSink).unwrap();
    let records: Vec<UnitRecord> = results.iter().map(|r| r.record.clone()).collect();
    reports(&records)
}

#[test]
fn dispatch_streams_disable_nagle() {
    // Both transport endpoints (coordinator accept, worker connect) run
    // their sockets through `configure_stream`; the protocol's small
    // request/response frames must not sit in Nagle's buffer a
    // round-trip at a time.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::net::TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    for stream in [&client, &server] {
        assert!(!stream.nodelay().unwrap(), "NODELAY is off by default");
        configure_stream(stream).unwrap();
        assert!(stream.nodelay().unwrap(), "configure_stream sets NODELAY");
    }
}

#[test]
fn distributed_reports_are_byte_identical_to_the_local_pool() {
    let units = quickstart_units();
    let golden = local_golden(&units);
    for workers in [1, 2, 4] {
        let outcome =
            run_distributed_local(&units, RunConfig::new(1), workers, &mut NullSink).unwrap();
        assert_eq!(outcome.executed, units.len(), "workers={workers}");
        assert_eq!(outcome.cache_hits, 0, "workers={workers}");
        let got = reports(&outcome.records());
        assert_eq!(golden.0, got.0, "human report, workers={workers}");
        assert_eq!(golden.1, got.1, "csv report, workers={workers}");
        assert_eq!(golden.2, got.2, "jsonl report, workers={workers}");
        // Full payloads came over the wire and verified against each
        // unit's content hash.
        for unit in &outcome.units {
            assert!(unit.result().is_some());
        }
    }
}

#[test]
fn a_worker_killed_mid_unit_does_not_change_the_reports() {
    let units = quickstart_units();
    let n = units.len();
    let golden = local_golden(&units);

    // One deserter (vanishes mid-unit after k completions, like a killed
    // process) plus one reliable worker that finishes the campaign.
    for k in [0, n / 2] {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let outcome = std::thread::scope(|s| {
            let deserter_addr = addr.clone();
            s.spawn(move || {
                let config = WorkerConfig {
                    abandon_after: Some(k),
                    ..WorkerConfig::default()
                };
                let report = run_worker(&deserter_addr, &config).unwrap();
                assert!(report.clean_exit);
                assert!(report.completed <= k);
            });
            let steady_addr = addr.clone();
            s.spawn(move || {
                // The steady worker may connect before or after the
                // deserter leaves; either way it drains the campaign.
                let _ = run_worker(&steady_addr, &WorkerConfig::default());
            });
            // A short heartbeat timeout keeps the test snappy if the
            // deserter's half-open socket lingers (it should not: the
            // dropped stream closes and the coordinator re-queues).
            let mut config = ServeConfig::new(RunConfig::new(1));
            config.heartbeat_timeout = Duration::from_secs(10);
            let result = serve_units(&listener, &units, config, &mut NullSink);
            // Close the listener before joining the workers: a worker
            // that only reaches the backlog after completion would
            // otherwise wait forever for a welcome.
            drop(listener);
            result
        })
        .unwrap();
        assert!(
            outcome.executed >= n,
            "k={k}: every unit completed (re-dispatches may add more)"
        );
        let got = reports(&outcome.records());
        assert_eq!(golden.2, got.2, "jsonl report, kill after k={k}");
        assert_eq!(golden.0, got.0, "human report, kill after k={k}");
        assert_eq!(golden.1, got.1, "csv report, kill after k={k}");
    }
}

#[test]
fn a_corrupt_result_costs_the_connection_not_the_unit() {
    use sea_dse::dist::frame::{handshake_line, read_frame, write_frame, FrameKind};
    use sea_dse::dist::wire;

    let units = quickstart_units();
    let golden = local_golden(&units);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Signals that the saboteur holds a work item, so the honest worker
    // only joins afterwards (the saboteur must reliably get a unit).
    let (got_work_tx, got_work_rx) = std::sync::mpsc::channel::<()>();

    let outcome = std::thread::scope(|s| {
        s.spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            write_frame(&mut stream, FrameKind::Hello, handshake_line().as_bytes()).unwrap();
            let welcome = read_frame(&mut stream).unwrap();
            assert_eq!(welcome.kind, FrameKind::Welcome);
            let work = read_frame(&mut stream).unwrap();
            assert_eq!(work.kind, FrameKind::Work);
            let (index, hash, _unit) =
                wire::decode_work(std::str::from_utf8(&work.body).unwrap()).unwrap();
            got_work_tx.send(()).unwrap();
            // A result whose header parses but whose entry bytes cannot
            // be verified: the coordinator must refuse this connection
            // and re-queue the unit, never losing it.
            let body =
                wire::encode_result_body(index, hash, "sea-unit-cache 1 garbage\nnot an entry\n");
            let _ = write_frame(&mut stream, FrameKind::Result, body.as_bytes());
            // Expect a Refuse (or a straight close) and go away.
            let _ = read_frame(&mut stream);
        });
        s.spawn(move || {
            got_work_rx.recv().unwrap();
            let _ = run_worker(&addr.to_string(), &WorkerConfig::default());
        });
        let result = serve_units(
            &listener,
            &units,
            ServeConfig::new(RunConfig::new(1)),
            &mut NullSink,
        );
        drop(listener);
        result
    })
    .unwrap();
    assert_eq!(
        golden,
        reports(&outcome.records()),
        "the sabotaged unit was recomputed by the honest worker"
    );
}

#[test]
fn resume_works_across_the_network_boundary() {
    let dir = temp_dir();
    let units = quickstart_units();
    let n = units.len();

    // Uninterrupted journaled *distributed* run.
    let full_journal = dir.join("full.jsonl");
    let mut plan = open_journal(&full_journal, "quickstart", &units).unwrap();
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    let full = run_distributed_local(&units, config, 2, &mut NullSink).unwrap();
    assert_eq!(full.executed, n);
    let golden = reports(&full.records());

    // Simulate a coordinator killed halfway: keep the header plus half
    // the records, then resume over the network again.
    let journal_lines: Vec<String> = std::fs::read_to_string(&full_journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(journal_lines.len(), n + 1, "header + one record per unit");
    let keep = n / 2;
    let crashed = dir.join("crashed.jsonl");
    let mut prefix = journal_lines[..=keep].join("\n");
    prefix.push('\n');
    std::fs::write(&crashed, prefix).unwrap();

    let mut plan = open_journal(&crashed, "quickstart", &units).unwrap();
    assert_eq!(plan.resumed, keep);
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    let resumed = run_distributed_local(&units, config, 2, &mut NullSink).unwrap();
    assert_eq!(resumed.resumed, keep);
    assert_eq!(resumed.executed, n - keep, "only the missing units travel");
    let got = reports(&resumed.records());
    assert_eq!(golden, got, "resumed distributed reports byte-identical");

    // The resumed journal is complete and valid.
    let resumed_lines = std::fs::read_to_string(&crashed).unwrap();
    assert_eq!(resumed_lines.lines().count(), n + 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn coordinator_cache_probe_short_circuits_dispatch() {
    let dir = temp_dir();
    let cache = Cache::open(dir.join("cache")).unwrap();
    let units = quickstart_units();
    let n = units.len();

    // Cold distributed run populates the coordinator-side cache.
    let mut config = RunConfig::new(1);
    config.cache = Some(&cache);
    let cold = run_distributed_local(&units, config, 2, &mut NullSink).unwrap();
    assert_eq!(cold.executed, n);
    assert_eq!(cold.cache_hits, 0);
    let golden = reports(&cold.records());

    // Warm run: every unit completes from the cache before dispatch, so
    // zero units travel (zero workers would work just as well).
    let mut config = RunConfig::new(1);
    config.cache = Some(&cache);
    let warm = run_distributed_local(&units, config, 1, &mut NullSink).unwrap();
    assert_eq!(warm.executed, 0, "warm distributed run evaluates nothing");
    assert_eq!(warm.cache_hits, n);
    assert_eq!(golden, reports(&warm.records()));

    // And the cache a *local* engine populated serves the distributed
    // coordinator identically (shared-cache interop both ways).
    let local = sea_dse::campaign::run_units_configured(
        &units,
        {
            let mut c = RunConfig::new(2);
            c.cache = Some(&cache);
            c
        },
        &mut NullSink,
    )
    .unwrap();
    assert_eq!(local.executed, 0);
    assert_eq!(golden, reports(&local.records()));
    let _ = std::fs::remove_dir_all(dir);
}
