//! Service-mode integration tests: the multi-campaign daemon must keep
//! the determinism contract under concurrency — every campaign's
//! streamed records and final report byte-identical to a local
//! `campaign` run of the same spec, overlapping units evaluated exactly
//! once fleet-wide, cancellation clean, and a daemon kill + restart
//! (with a journal directory) resumed by reconnecting workers.

use std::io::{BufRead, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use sea_dse::campaign::{jsonl_report, parse_campaign, run_units, Cache, NullSink, UnitRecord};
use sea_dse::dist::{run_worker, WorkerConfig};
use sea_dse::serve::{cancel, run_daemon, status, stop, submit, submit_watch, DaemonConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sea-daemon-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// Two specs sharing one identical unit (optimize mpeg2@4, explicit seed
// 42): `unit_hash` ignores the presentation fields, so the daemon must
// evaluate the shared unit once and fan the result out to both.
const ALPHA: &str = "\
name = \"alpha\"
budget = \"fast\"

[scenario]
name = \"shared\"
kind = \"optimize\"
apps = \"mpeg2\"
cores = \"4\"
seeds = \"42\"

[scenario]
name = \"alpha-only\"
kind = \"optimize\"
apps = \"fig8\"
cores = \"3\"
seeds = \"1\"
";

const BETA: &str = "\
name = \"beta\"
budget = \"fast\"

[scenario]
name = \"beta-only\"
kind = \"optimize\"
apps = \"fig8\"
cores = \"4\"
seeds = \"2\"

[scenario]
name = \"shared\"
kind = \"optimize\"
apps = \"mpeg2\"
cores = \"4\"
seeds = \"42\"
";

/// The local golden: same spec through the in-process pool, rendered as
/// the JSONL report (what `campaign --format jsonl` prints to stdout).
fn local_jsonl(spec: &str) -> String {
    let units = parse_campaign(spec).unwrap().expand();
    let results = run_units(&units, 2, &mut NullSink).unwrap();
    let records: Vec<UnitRecord> = results.iter().map(|r| r.record.clone()).collect();
    jsonl_report(&records)
}

#[test]
fn concurrent_campaigns_match_local_runs_and_share_the_overlap() {
    let golden_a = local_jsonl(ALPHA);
    let golden_b = local_jsonl(BETA);
    let dir = temp_dir();
    let cache = Cache::open(dir.join("cache")).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let (report, w1, w2, a, b) = std::thread::scope(|s| {
        let daemon = s.spawn(|| {
            let mut config = DaemonConfig::new();
            config.cache = Some(cache);
            run_daemon(&listener, &config)
        });
        let wa = addr.clone();
        let w1 = s.spawn(move || run_worker(&wa, &WorkerConfig::default()));
        let wb = addr.clone();
        let w2 = s.spawn(move || run_worker(&wb, &WorkerConfig::default()));
        let watch = |spec: &'static str| {
            let addr = addr.clone();
            s.spawn(move || {
                let mut records = Vec::new();
                let mut report = Vec::new();
                let outcome = submit_watch(&addr, spec, &mut records, &mut report).unwrap();
                (outcome, records, report)
            })
        };
        let client_a = watch(ALPHA);
        let client_b = watch(BETA);
        let a = client_a.join().unwrap();
        let b = client_b.join().unwrap();
        stop(&addr).unwrap();
        let report = daemon.join().unwrap().unwrap();
        (
            report,
            w1.join().unwrap().unwrap(),
            w2.join().unwrap().unwrap(),
            a,
            b,
        )
    });

    // Byte-identity: the streamed record lines ARE the report bytes, and
    // both equal the local run — regardless of the other in-flight
    // campaign sharing the worker fleet.
    for (name, golden, (outcome, records, rep)) in
        [("alpha", &golden_a, &a), ("beta", &golden_b, &b)]
    {
        assert_eq!(outcome.n_units, 2, "{name}");
        assert_eq!(
            String::from_utf8_lossy(rep),
            *golden.as_str(),
            "{name} report"
        );
        assert_eq!(records, rep, "{name}: stream == report bytes");
    }
    assert_ne!(a.0.campaign_id, b.0.campaign_id);
    assert_ne!(a.0.spec_hash, b.0.spec_hash);

    // The overlap evaluated exactly once fleet-wide: 3 unique units, and
    // the 4th completion came from dedupe fan-out or the shared cache.
    assert_eq!(report.campaigns, 2);
    assert_eq!(report.completed, 2);
    assert_eq!(report.evaluated, 3, "3 unique units, one evaluation each");
    let cache_hits: usize = report.workers.iter().map(|(_, w)| w.cache_hits).sum();
    assert_eq!(report.deduped + cache_hits, 1, "one shared completion");
    assert!(w1.clean_exit && w2.clean_exit, "Shutdown reached the fleet");
    assert_eq!(w1.completed + w2.completed, 3);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancel_withdraws_a_campaign_and_is_idempotent() {
    // No workers connect, so the campaign sits queued until cancelled.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let report = std::thread::scope(|s| {
        let daemon = s.spawn(|| run_daemon(&listener, &DaemonConfig::new()));
        let outcome = submit(&addr, ALPHA).unwrap();
        // Re-submitting the identical spec attaches to the existing
        // campaign instead of duplicating the work.
        let again = submit(&addr, ALPHA).unwrap();
        assert_eq!(outcome, again);

        let msg = cancel(&addr, outcome.campaign_id).unwrap();
        assert!(msg.contains("cancelled (0/2 units completed)"), "{msg}");
        let st = status(&addr).unwrap();
        assert!(st.contains("\"state\":\"cancelled\""), "{st}");
        // Cancelling again reports, it does not error; unknown ids do.
        let twice = cancel(&addr, outcome.campaign_id).unwrap();
        assert!(twice.contains("already"), "{twice}");
        assert!(cancel(&addr, 99).is_err());
        // A cancelled campaign refuses subscribers (via a fresh submit's
        // watch path it would refuse too) — status keeps the tombstone.
        stop(&addr).unwrap();
        daemon.join().unwrap().unwrap()
    });
    assert_eq!(report.campaigns, 1);
    assert_eq!(report.cancelled, 1);
    assert_eq!(report.completed, 0);
    assert_eq!(report.evaluated, 0);
}

/// A record writer that signals the first streamed line — the cue that
/// the daemon has journalled at least one completion and can be killed.
struct FirstLineSignal(Option<std::sync::mpsc::Sender<()>>);

impl Write for FirstLineSignal {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Some(tx) = self.0.take() {
            let _ = tx.send(());
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Spawns `sea-dse daemon` as a real subprocess (so the test can kill it
/// mid-run) and returns the child, its bound address, and a thread
/// draining the rest of its stderr.
fn spawn_daemon(
    listen: &str,
    journal_dir: &std::path::Path,
) -> (std::process::Child, String, std::thread::JoinHandle<String>) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_sea-dse"))
        .args([
            "daemon",
            "--listen",
            listen,
            "--journal-dir",
            journal_dir.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = std::io::BufReader::new(child.stderr.take().unwrap());
    let mut addr = String::new();
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
            addr = rest.to_string();
            break;
        }
        line.clear();
    }
    assert!(!addr.is_empty(), "daemon never announced its address");
    // Keep the pipe drained so the daemon can't block on a full buffer.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        rest
    });
    (child, addr, drain)
}

#[test]
fn daemon_restart_resumes_the_journal_and_workers_reconnect() {
    // Five units (vs two workers), so killing the daemon right after the
    // first streamed record is guaranteed to leave work outstanding: the
    // restarted daemon must wait for the reconnecting fleet rather than
    // finish instantly from the journal.
    let spec = sea_dse::experiments::campaigns::builtin("quickstart")
        .unwrap()
        .source;
    let golden = local_jsonl(spec);
    let dir = temp_dir();
    let journal_dir = dir.join("journals");
    std::fs::create_dir_all(&journal_dir).unwrap();

    let (mut child, addr, drain) = spawn_daemon("127.0.0.1:0", &journal_dir);

    // Two live workers that must survive the daemon restart: each loss
    // opens a fresh reconnect window, so the fleet rides out the outage.
    let worker = |addr: String| {
        std::thread::spawn(move || {
            let config = WorkerConfig {
                connect_retry: Duration::from_secs(30),
                ..WorkerConfig::default()
            };
            run_worker(&addr, &config)
        })
    };
    let w1 = worker(addr.clone());
    let w2 = worker(addr.clone());

    // Submit and watch until the first record lands (journalled and
    // fsync'd before it is ever streamed), then kill the daemon.
    let (tx, rx) = std::sync::mpsc::channel();
    let watch_addr = addr.clone();
    let watcher = std::thread::spawn(move || {
        let mut records = FirstLineSignal(Some(tx));
        let mut report = Vec::new();
        // May fail (daemon killed mid-watch) or succeed (small campaign
        // finished first); either way the journal holds ≥ 1 record.
        let _ = submit_watch(&watch_addr, spec, &mut records, &mut report);
    });
    rx.recv_timeout(Duration::from_secs(120))
        .expect("no record ever streamed");
    child.kill().unwrap();
    child.wait().unwrap();
    let first_log = drain.join().unwrap();
    assert!(first_log.contains("accepted"), "{first_log}");
    watcher.join().unwrap();

    // Restart on the SAME address with the same journal directory;
    // re-submitting the identical spec resumes instead of recomputing.
    let (mut child, addr2, drain) = spawn_daemon(&addr, &journal_dir);
    assert_eq!(addr, addr2);
    let mut records = Vec::new();
    let mut report = Vec::new();
    let outcome = submit_watch(&addr, spec, &mut records, &mut report).unwrap();
    assert_eq!(outcome.n_units, 5);
    assert_eq!(
        String::from_utf8_lossy(&report),
        golden,
        "resumed service report byte-identical to the local run"
    );
    assert_eq!(records, report, "stream == report bytes");
    let st = status(&addr).unwrap();
    assert!(
        !st.contains("\"resumed\":0"),
        "at least one unit restored from the journal: {st}"
    );

    stop(&addr).unwrap();
    child.wait().unwrap();
    let second_log = drain.join().unwrap();
    assert!(second_log.contains("resumed)"), "{second_log}");
    let r1 = w1.join().unwrap().unwrap();
    let r2 = w2.join().unwrap().unwrap();
    assert!(r1.clean_exit && r2.clean_exit);
    assert!(
        r1.reconnects >= 1 && r2.reconnects >= 1,
        "both workers re-attached after the restart ({} / {})",
        r1.reconnects,
        r2.reconnects
    );
    let _ = std::fs::remove_dir_all(dir);
}
