//! Offline-analytics equivalence tests for `sea-dse report`.
//!
//! The analytics layer's contract: the aggregate sections rendered live
//! by `campaign --report-aggregates` and the ones recomputed offline by
//! `sea-dse report` from a resume journal or a result cache are
//! **byte-identical** — in every output format, at every worker count,
//! with zero units re-evaluated on the offline path. Golden fixtures
//! under `tests/golden/report_*.txt` additionally pin the exact bytes
//! (per-unit report followed by the four aggregate sections) so renderer
//! drift cannot hide behind self-consistency.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use sea_dse::campaign::{
    csv_aggregates, csv_report, human_aggregates, human_report, jsonl_aggregates, jsonl_report,
    open_journal, parse_campaign, read_journal_records, run_units_configured, Cache, NullSink,
    RunConfig, Unit, UnitRecord,
};
use sea_dse::experiments::campaigns::builtin;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sea-report-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quickstart_units() -> Vec<Unit> {
    parse_campaign(builtin("quickstart").expect("builtin exists").source)
        .expect("builtin parses")
        .expand()
}

/// What the CLI writes to stdout for one record list, per format: the
/// per-unit final report followed by the aggregate sections — exactly
/// `Sink::finish` then `Sink::report_aggregates`.
fn stdout_renders(records: &[UnitRecord]) -> [String; 3] {
    [
        human_report(records) + &human_aggregates(records),
        csv_report(records) + &csv_aggregates(records),
        jsonl_report(records) + &jsonl_aggregates(records),
    ]
}

#[test]
fn offline_report_matches_live_aggregates_byte_for_byte_at_any_job_count() {
    let dir = temp_dir();
    let units = quickstart_units();
    let n = units.len();
    let cache = Cache::open(dir.join("cache")).unwrap();

    let mut golden: Option<[String; 3]> = None;
    for jobs in [1, 2] {
        // Live journaled+cached run (warm on the second pass: the cache
        // must not perturb any of the renders).
        let journal_path = dir.join(format!("quickstart-{jobs}.journal"));
        let mut plan = open_journal(&journal_path, "quickstart", &units).unwrap();
        let mut config = RunConfig::new(jobs);
        config.prefilled = std::mem::take(&mut plan.prefilled);
        config.journal = Some(plan.writer);
        config.cache = Some(&cache);
        let outcome = run_units_configured(&units, config, &mut NullSink).unwrap();
        let live = stdout_renders(&outcome.records());
        match &golden {
            None => {
                assert_eq!(live[0], include_str!("golden/report_human.txt"));
                assert_eq!(live[1], include_str!("golden/report_csv.txt"));
                assert_eq!(live[2], include_str!("golden/report_jsonl.txt"));
                golden = Some(live.clone());
            }
            Some(g) => assert_eq!(g, &live, "jobs={jobs} changes the live render"),
        }

        // Offline path 1: the journal restores every record in
        // enumeration order and renders identically.
        let (header, from_journal) = read_journal_records(&journal_path).unwrap();
        assert_eq!((header.units, from_journal.len()), (n, n));
        assert_eq!(
            &stdout_renders(&from_journal),
            golden.as_ref().unwrap(),
            "journal offline render (jobs={jobs})"
        );
    }

    // Offline path 2: the cache — unordered content-addressed entries —
    // yields the same records once sorted by enumeration index.
    let (from_cache, skipped) = cache.records().unwrap();
    assert_eq!((from_cache.len(), skipped), (n, 0));
    assert_eq!(
        &stdout_renders(&from_cache),
        golden.as_ref().unwrap(),
        "cache offline render"
    );
    let _ = std::fs::remove_dir_all(dir);
}
