//! Crash/resume equivalence and cache-behavior integration tests.
//!
//! The persistence layer's contract is absolute: a campaign killed at
//! *any* unit boundary and resumed from its journal — at any worker
//! count — must produce final reports **byte-identical** to an
//! uninterrupted run, in every output format; and a warm result cache
//! must short-circuit every evaluation while changing nothing in the
//! output. These tests simulate the kill by truncating a real journal
//! after k ∈ {0, 1, half, all} records and re-running.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use sea_dse::campaign::{
    csv_report, human_report, jsonl_report, open_journal, parse_campaign, parse_journal,
    run_units_configured, Cache, NullSink, RunConfig, Unit, UnitRecord,
};
use sea_dse::experiments::campaigns::builtin;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sea-resume-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quickstart_units() -> Vec<Unit> {
    parse_campaign(builtin("quickstart").expect("builtin exists").source)
        .expect("builtin parses")
        .expand()
}

/// All three final reports, rendered from enumeration-order records.
fn reports(records: &[UnitRecord]) -> (String, String, String) {
    (
        human_report(records),
        csv_report(records),
        jsonl_report(records),
    )
}

#[test]
fn resuming_any_truncation_point_reproduces_the_reports_byte_for_byte() {
    let dir = temp_dir();
    let units = quickstart_units();
    let n = units.len();

    // Uninterrupted journaled run (jobs=1 → journal records are in
    // enumeration order, so a line-truncation is a unit-boundary kill).
    let full_journal = dir.join("full.jsonl");
    let mut plan = open_journal(&full_journal, "quickstart", &units).unwrap();
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    let full = run_units_configured(&units, config, &mut NullSink).unwrap();
    assert_eq!(full.executed, n);
    let golden = reports(&full.records());

    let journal_lines: Vec<String> = std::fs::read_to_string(&full_journal)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(journal_lines.len(), n + 1, "header + one record per unit");

    for jobs in [1, 4] {
        for k in [0, 1, n / 2, n] {
            let path = dir.join(format!("trunc-{jobs}-{k}.jsonl"));
            let mut prefix = journal_lines[..=k].join("\n");
            prefix.push('\n');
            std::fs::write(&path, prefix).unwrap();

            let mut plan = open_journal(&path, "quickstart", &units).unwrap();
            assert_eq!(plan.resumed, k, "journal restores exactly k units");
            let mut config = RunConfig::new(jobs);
            config.prefilled = std::mem::take(&mut plan.prefilled);
            config.journal = Some(plan.writer);
            let resumed = run_units_configured(&units, config, &mut NullSink).unwrap();
            assert_eq!(resumed.executed, n - k, "only missing units run");
            assert_eq!(resumed.resumed, k);

            let got = reports(&resumed.records());
            assert_eq!(golden.0, got.0, "human report (jobs={jobs}, k={k})");
            assert_eq!(golden.1, got.1, "csv report (jobs={jobs}, k={k})");
            assert_eq!(golden.2, got.2, "jsonl report (jobs={jobs}, k={k})");

            // The resumed journal is now complete and re-parseable.
            let finished = parse_journal(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(finished.records.len(), n);
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn every_mid_run_journal_prefix_parses_as_valid_jsonl() {
    // The journal fsyncs per record, so a kill leaves a clean line
    // prefix; every such prefix must parse (fewer records, same header).
    let dir = temp_dir();
    let units = quickstart_units();
    let path = dir.join("journal.jsonl");
    let mut plan = open_journal(&path, "quickstart", &units).unwrap();
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    run_units_configured(&units, config, &mut NullSink).unwrap();

    let source = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = source.lines().collect();
    for k in 1..=lines.len() {
        let mut prefix = lines[..k].join("\n");
        prefix.push('\n');
        let journal = parse_journal(&prefix)
            .unwrap_or_else(|e| panic!("prefix of {k} lines fails to parse: {e}"));
        assert_eq!(journal.records.len(), k - 1);
    }
    // A torn (half-written) tail is tolerated on top of any prefix.
    let mut torn = lines[..3].join("\n");
    torn.push('\n');
    torn.push_str(&lines[3][..lines[3].len() / 2]);
    assert_eq!(parse_journal(&torn).unwrap().records.len(), 2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resuming_a_torn_journal_truncates_the_fragment_and_survives_a_second_resume() {
    // Double-crash scenario: a kill mid-append leaves a newline-less
    // fragment. The resume must truncate it before appending — otherwise
    // the next record fuses onto the fragment, producing a corrupt
    // mid-file line that a *second* resume would refuse.
    let dir = temp_dir();
    let units = quickstart_units();
    let n = units.len();
    let path = dir.join("torn.jsonl");

    // Full journal, then simulate the crash: keep header + 2 records and
    // half of the third record's line (no trailing newline).
    let mut plan = open_journal(&path, "quickstart", &units).unwrap();
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    let full = run_units_configured(&units, config, &mut NullSink).unwrap();
    let golden = jsonl_report(&full.records());
    let lines: Vec<String> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    let mut torn = lines[..3].join("\n");
    torn.push('\n');
    torn.push_str(&lines[3][..lines[3].len() / 2]);
    std::fs::write(&path, &torn).unwrap();

    // First resume: restores 2, truncates the fragment, completes.
    let mut plan = open_journal(&path, "quickstart", &units).unwrap();
    assert_eq!(plan.resumed, 2, "fragment is dropped, not restored");
    let mut config = RunConfig::new(1);
    config.prefilled = std::mem::take(&mut plan.prefilled);
    config.journal = Some(plan.writer);
    let resumed = run_units_configured(&units, config, &mut NullSink).unwrap();
    assert_eq!(jsonl_report(&resumed.records()), golden);

    // The file is now clean: every line parses, no fused records.
    let finished = parse_journal(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(finished.records.len(), n);

    // Second resume: everything restores, nothing runs.
    let plan = open_journal(&path, "quickstart", &units).unwrap();
    assert_eq!(plan.resumed, n, "second resume sees a fully valid journal");
    let _ = std::fs::remove_dir_all(dir);
}

/// A small campaign covering every unit kind for the cache tests.
const CACHE_SPEC: &str = "\
name = \"cache-int\"
budget = \"fast\"
[scenario]
kind = \"optimize\"
apps = \"fig8\"
cores = \"3\"
[scenario]
kind = \"sweep\"
apps = \"mpeg2\"
cores = \"4\"
count = 10
[scenario]
kind = \"simulate\"
apps = \"mpeg2\"
cores = \"4\"
scaling = \"2,2,3,2\"
groups = \"0,1,2,3,4,5|6,7|8|9,10\"
seeds = \"13\"
";

#[test]
fn cold_run_populates_and_warm_run_is_all_hits_with_identical_output() {
    let dir = temp_dir();
    let cache = Cache::open(dir.join("cache")).unwrap();
    let units = parse_campaign(CACHE_SPEC).unwrap().expand();
    let n = units.len();

    let run = |cache: &Cache| {
        let mut config = RunConfig::new(2);
        config.cache = Some(cache);
        run_units_configured(&units, config, &mut NullSink).unwrap()
    };
    let cold = run(&cache);
    assert_eq!((cold.executed, cold.cache_hits), (n, 0), "cold populates");
    let warm = run(&cache);
    assert_eq!(
        (warm.executed, warm.cache_hits),
        (0, n),
        "warm is 100% hits"
    );
    assert_eq!(
        jsonl_report(&cold.records()),
        jsonl_report(&warm.records()),
        "warm output is byte-identical"
    );

    // Corrupt one entry: detected, recomputed, not crashed.
    let entry = std::fs::read_dir(cache.dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "unit"))
        .expect("cache has entries");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&entry, bytes).unwrap();
    let healed = run(&cache);
    assert_eq!(
        (healed.executed, healed.cache_hits),
        (1, n - 1),
        "exactly the corrupted entry recomputes"
    );
    assert_eq!(
        jsonl_report(&cold.records()),
        jsonl_report(&healed.records())
    );
    // And the recompute rewrote the entry: everything hits again.
    let again = run(&cache);
    assert_eq!((again.executed, again.cache_hits), (0, n));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sea_cache_unset_means_zero_filesystem_writes() {
    // Drive the exact resolution + run path the binaries use, twice:
    // once with SEA_CACHE pointing at a watched tempdir (positive
    // control — the dir must fill up, proving the assertion *can* fail)
    // and once with it unset (the dir must stay exactly as the control
    // left it: zero new writes). This is the only test in this binary
    // touching SEA_CACHE, so the env mutation cannot race.
    let dir = temp_dir();
    let cache_dir = dir.join("watched-cache");
    let units = parse_campaign(CACHE_SPEC).unwrap().expand();
    let saved = std::env::var(sea_dse::campaign::CACHE_ENV).ok();

    let run_like_the_cli = || {
        let cache = Cache::resolve(None).unwrap();
        let mut config = RunConfig::new(2);
        config.cache = cache.as_ref();
        let outcome = run_units_configured(&units, config, &mut NullSink).unwrap();
        (cache.is_some(), outcome)
    };
    // Name + size + mtime per entry: catches silent overwrites (which
    // keep names but refresh mtimes), not just creations.
    let snapshot = |path: &std::path::Path| -> Vec<(String, u64, std::time::SystemTime)> {
        match std::fs::read_dir(path) {
            Ok(entries) => {
                let mut all: Vec<_> = entries
                    .map(|e| {
                        let e = e.unwrap();
                        let meta = e.metadata().unwrap();
                        (
                            e.file_name().to_string_lossy().into_owned(),
                            meta.len(),
                            meta.modified().unwrap(),
                        )
                    })
                    .collect();
                all.sort();
                all
            }
            Err(_) => Vec::new(), // not even created
        }
    };

    // Positive control: env set ⇒ the same code path writes entries.
    std::env::set_var(sea_dse::campaign::CACHE_ENV, &cache_dir);
    let (resolved, outcome) = run_like_the_cli();
    assert!(resolved, "control: SEA_CACHE resolves a cache");
    assert_eq!(outcome.executed, units.len());
    let populated = snapshot(&cache_dir);
    assert_eq!(
        populated.len(),
        units.len(),
        "control: the watched dir fills up, so the assertion below can fail"
    );

    // SEA_CACHE unset ⇒ no cache resolves and nothing is written.
    std::env::remove_var(sea_dse::campaign::CACHE_ENV);
    let (resolved, outcome) = run_like_the_cli();
    assert!(!resolved, "unset env resolves no cache");
    assert_eq!(outcome.executed, units.len(), "everything re-evaluates");
    assert_eq!(outcome.cache_hits, 0);
    assert_eq!(
        snapshot(&cache_dir),
        populated,
        "unset env ⇒ zero new filesystem writes"
    );

    match saved {
        Some(v) => std::env::set_var(sea_dse::campaign::CACHE_ENV, v),
        None => std::env::remove_var(sea_dse::campaign::CACHE_ENV),
    }
    let _ = std::fs::remove_dir_all(dir);
}
