//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use sea_dse::arch::{Architecture, CoreId, LevelSet, ScalingVector, SerModel};
use sea_dse::opt::ScalingIter;
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sched::Mapping;
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::graph::TaskGraphBuilder;
use sea_dse::taskgraph::registers::RegisterModelBuilder;
use sea_dse::taskgraph::units::{Bits, Cycles};
use sea_dse::taskgraph::{Application, ExecutionMode, TaskId};

/// Builds a random layered DAG application directly from proptest inputs.
fn arb_application() -> impl Strategy<Value = Application> {
    (4usize..24, any::<u64>()).prop_map(|(n, seed)| {
        RandomGraphConfig::paper(n)
            .generate(seed)
            .expect("generator accepts all paper-parameter sizes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The list scheduler never violates task precedence, for any mapping
    /// and scaling.
    #[test]
    fn schedule_respects_precedence(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        s in 1u8..=3,
    ) {
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        let scaling = ScalingVector::uniform(s, &arch).unwrap();
        let ctx = EvalContext::new(&app, &arch);
        let schedule = ctx.schedule(&mapping, &scaling).unwrap();

        let mut finish = vec![0.0f64; n];
        let mut start = vec![0.0f64; n];
        for lane in schedule.per_core() {
            for e in lane {
                finish[e.task.index()] = e.finish_s;
                start[e.task.index()] = e.start_s;
            }
        }
        for e in app.graph().edges() {
            prop_assert!(
                start[e.dst.index()] >= finish[e.src.index()] - 1e-9,
                "edge {} -> {} violated",
                e.src,
                e.dst
            );
        }
    }

    /// Total register usage always equals the duplication identity:
    /// `Σ_i R_i = total_union + duplication(partition)` (eq. 8).
    #[test]
    fn register_usage_identity(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..4, 24),
    ) {
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            4,
        ).unwrap();
        let m = app.registers();
        let groups: Vec<Vec<TaskId>> = mapping.groups();
        let per_core: Bits = groups.iter().map(|g| m.union_bits(g.iter().copied())).sum();
        // Note: tasks absent from a partition (none here) would break the
        // identity; mappings are always complete.
        prop_assert_eq!(per_core, m.total_union() + m.duplication_bits(&groups));
    }

    /// Γ is monotone: adding voltage scaling (higher coefficient) to every
    /// core never reduces expected SEUs at a fixed mapping.
    #[test]
    fn gamma_monotone_in_uniform_scaling(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..2, 24),
    ) {
        let arch = Architecture::homogeneous(2, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            2,
        ).unwrap();
        let ctx = EvalContext::new(&app, &arch);
        let mut last = 0.0f64;
        for s in 1..=3u8 {
            let scaling = ScalingVector::uniform(s, &arch).unwrap();
            let e = ctx.evaluate(&mapping, &scaling).unwrap();
            prop_assert!(e.gamma >= last, "Γ fell from {} to {} at s={}", last, e.gamma, s);
            last = e.gamma;
        }
    }

    /// The scaling enumeration yields exactly the multiset count, all
    /// non-increasing, all unique, for every (C, L) shape.
    #[test]
    fn scaling_iter_completeness(cores in 1usize..7, levels in 1usize..5) {
        let combos: Vec<Vec<u8>> = ScalingIter::new(cores, levels).collect();
        prop_assert_eq!(
            combos.len() as u64,
            ScalingIter::count_combinations(cores, levels)
        );
        for v in &combos {
            for w in v.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            for &x in v {
                prop_assert!(x >= 1 && x as usize <= levels);
            }
        }
        let mut sorted = combos.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), combos.len());
    }

    /// Applying a move and its inverse restores the mapping.
    #[test]
    fn moves_are_invertible(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        pick in any::<prop::sample::Index>(),
    ) {
        let n = app.graph().len();
        let original = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        let moves = original.neighbourhood();
        prop_assume!(!moves.is_empty());
        let mv = moves[pick.index(moves.len())];
        let mut m = original.clone();
        let inv = m.apply(mv);
        prop_assert_ne!(&m, &original);
        m.apply(inv);
        prop_assert_eq!(m, original);
    }

    /// The SER model is multiplicative in λ_ref and decreasing in Vdd.
    #[test]
    fn ser_model_properties(
        lambda_exp in -12.0f64..-6.0,
        v in 0.3f64..1.3,
        dv in 0.01f64..0.3,
    ) {
        let l1 = SerModel::calibrated(10f64.powf(lambda_exp));
        let l10 = SerModel::calibrated(10f64.powf(lambda_exp + 1.0));
        prop_assert!((l10.lambda(v) / l1.lambda(v) - 10.0).abs() < 1e-6);
        prop_assert!(l1.lambda(v - dv) > l1.lambda(v));
    }

    /// Pipelined makespan is bounded below by the busiest core's total
    /// work and above by fully serial execution.
    #[test]
    fn pipelined_makespan_bounds(
        iterations in 1u32..40,
        costs in proptest::collection::vec(1u64..50, 2..8),
    ) {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| b.add_task(format!("t{i}"), Cycles::new(c * 1_000_000)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], Cycles::ZERO).unwrap();
        }
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(ids.len());
        for (i, id) in ids.iter().enumerate() {
            let blk = rm.add_block(format!("p{i}"), Bits::new(100));
            rm.assign(*id, blk).unwrap();
        }
        let app = Application::new(
            "chain",
            g,
            rm.build(),
            ExecutionMode::Pipelined { iterations },
            1e9,
        ).unwrap();
        let arch = Architecture::homogeneous(2, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        // Alternate tasks across the two cores.
        let mapping = Mapping::try_new(
            (0..ids.len()).map(|i| CoreId::new(i % 2)).collect(),
            2,
        ).unwrap();
        let scaling = ScalingVector::all_nominal(&arch);
        let sched = ctx.schedule(&mapping, &scaling).unwrap();

        let f = 200e6;
        let total: u64 = costs.iter().map(|c| c * 1_000_000).sum();
        let serial = total as f64 / f;
        let core_work = |c: usize| -> f64 {
            costs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == c)
                .map(|(_, &x)| (x * 1_000_000) as f64)
                .sum::<f64>()
                / f
        };
        let busiest = core_work(0).max(core_work(1));
        prop_assert!(sched.makespan_s() >= busiest - 1e-9);
        // Fully serial with no overlap would be `serial` per iteration...
        // the pipeline must do no worse than that plus one fill pass.
        prop_assert!(sched.makespan_s() <= serial * f64::from(iterations) + serial + 1e-9);
    }
}
