//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use sea_dse::arch::{Architecture, CoreId, LevelSet, ScalingVector, SerModel};
use sea_dse::campaign::{
    json_record, parse_campaign, unit_hash, units_hash, AppRef, BudgetSpec, Unit, UnitKind,
    UnitRecord,
};
use sea_dse::opt::ScalingIter;
use sea_dse::opt::SelectionPolicy;
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sched::Mapping;
use sea_dse::taskgraph::generator::RandomGraphConfig;
use sea_dse::taskgraph::graph::TaskGraphBuilder;
use sea_dse::taskgraph::registers::RegisterModelBuilder;
use sea_dse::taskgraph::units::{Bits, Cycles};
use sea_dse::taskgraph::AppSpec;
use sea_dse::taskgraph::{Application, ExecutionMode, TaskId};

/// Builds a random layered DAG application directly from proptest inputs.
fn arb_application() -> impl Strategy<Value = Application> {
    (4usize..24, any::<u64>()).prop_map(|(n, seed)| {
        RandomGraphConfig::paper(n)
            .generate(seed)
            .expect("generator accepts all paper-parameter sizes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The list scheduler never violates task precedence, for any mapping
    /// and scaling.
    #[test]
    fn schedule_respects_precedence(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        s in 1u8..=3,
    ) {
        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        let scaling = ScalingVector::uniform(s, &arch).unwrap();
        let ctx = EvalContext::new(&app, &arch);
        let schedule = ctx.schedule(&mapping, &scaling).unwrap();

        let mut finish = vec![0.0f64; n];
        let mut start = vec![0.0f64; n];
        for lane in schedule.per_core() {
            for e in lane {
                finish[e.task.index()] = e.finish_s;
                start[e.task.index()] = e.start_s;
            }
        }
        for e in app.graph().edges() {
            prop_assert!(
                start[e.dst.index()] >= finish[e.src.index()] - 1e-9,
                "edge {} -> {} violated",
                e.src,
                e.dst
            );
        }
    }

    /// Total register usage always equals the duplication identity:
    /// `Σ_i R_i = total_union + duplication(partition)` (eq. 8).
    #[test]
    fn register_usage_identity(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..4, 24),
    ) {
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            4,
        ).unwrap();
        let m = app.registers();
        let groups: Vec<Vec<TaskId>> = mapping.groups();
        let per_core: Bits = groups.iter().map(|g| m.union_bits(g.iter().copied())).sum();
        // Note: tasks absent from a partition (none here) would break the
        // identity; mappings are always complete.
        prop_assert_eq!(per_core, m.total_union() + m.duplication_bits(&groups));
    }

    /// Γ is monotone: adding voltage scaling (higher coefficient) to every
    /// core never reduces expected SEUs at a fixed mapping.
    #[test]
    fn gamma_monotone_in_uniform_scaling(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..2, 24),
    ) {
        let arch = Architecture::homogeneous(2, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            2,
        ).unwrap();
        let ctx = EvalContext::new(&app, &arch);
        let mut last = 0.0f64;
        for s in 1..=3u8 {
            let scaling = ScalingVector::uniform(s, &arch).unwrap();
            let e = ctx.evaluate(&mapping, &scaling).unwrap();
            prop_assert!(e.gamma >= last, "Γ fell from {} to {} at s={}", last, e.gamma, s);
            last = e.gamma;
        }
    }

    /// The scaling enumeration yields exactly the multiset count, all
    /// non-increasing, all unique, for every (C, L) shape.
    #[test]
    fn scaling_iter_completeness(cores in 1usize..7, levels in 1usize..5) {
        let combos: Vec<Vec<u8>> = ScalingIter::new(cores, levels).collect();
        prop_assert_eq!(
            combos.len() as u64,
            ScalingIter::count_combinations(cores, levels)
        );
        for v in &combos {
            for w in v.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            for &x in v {
                prop_assert!(x >= 1 && x as usize <= levels);
            }
        }
        let mut sorted = combos.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), combos.len());
    }

    /// The mapping-independent `TM` lower bound that drives the
    /// optimizer's chunk pruning never exceeds the scheduler's achieved
    /// makespan — for any random graph, any mapping, every scaling
    /// vector, in both execution modes. This is the soundness property
    /// that makes `tm_lower_bound(..) > deadline` a safe prune test.
    #[test]
    fn tm_lower_bound_never_exceeds_achieved_makespan(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        iterations in 1u32..6,
    ) {
        use sea_dse::sched::tm_lower_bound;
        use sea_dse::taskgraph::TaskGraphSoa;

        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mapping = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        // Same graph both ways: batch as generated, pipelined rebuilt.
        let pipelined = Application::new(
            app.name(),
            app.graph().clone(),
            app.registers().clone(),
            ExecutionMode::Pipelined { iterations },
            app.deadline_s(),
        ).unwrap();
        for app in [&app, &pipelined] {
            let soa = TaskGraphSoa::new(app);
            let ctx = EvalContext::new(app, &arch);
            for raw in ScalingIter::new(3, 3) {
                let scaling = ScalingVector::try_new(raw, &arch).unwrap();
                let lb = tm_lower_bound(&soa, app.mode(), &arch, &scaling);
                let tm = ctx.evaluate(&mapping, &scaling).unwrap().tm_seconds;
                prop_assert!(
                    lb <= tm,
                    "bound {lb} exceeds achieved TM {tm} ({:?}, scaling {scaling})",
                    app.mode(),
                );
            }
        }
    }

    /// Applying a move and its inverse restores the mapping.
    #[test]
    fn moves_are_invertible(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        pick in any::<prop::sample::Index>(),
    ) {
        let n = app.graph().len();
        let original = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        let moves = original.neighbourhood();
        prop_assume!(!moves.is_empty());
        let mv = moves[pick.index(moves.len())];
        let mut m = original.clone();
        let inv = m.apply(mv);
        prop_assert_ne!(&m, &original);
        m.apply(inv);
        prop_assert_eq!(m, original);
    }

    /// A random accept/reject walk through the delta evaluator yields
    /// summaries bitwise identical to a fresh full evaluation at every
    /// step, and moves straddling the fallback threshold take the
    /// expected replay path while staying exact.
    #[test]
    fn incremental_evaluator_is_bitwise_exact_on_random_walks(
        app in arb_application(),
        raw_mapping in proptest::collection::vec(0usize..3, 24),
        s in 1u8..=3,
        walk in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>()),
            1..16,
        ),
    ) {
        use sea_dse::sched::{
            fallback_cutoff, summaries_bitwise_eq, Evaluator, IncrementalEvaluator, Move,
        };

        let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
        let n = app.graph().len();
        let mut current = Mapping::try_new(
            raw_mapping[..n].iter().map(|&c| CoreId::new(c)).collect(),
            3,
        ).unwrap();
        let scaling = ScalingVector::uniform(s, &arch).unwrap();
        let ctx = EvalContext::new(&app, &arch);
        let mut full = Evaluator::new(ctx.clone());
        let mut inc = IncrementalEvaluator::new(ctx).with_enabled(true);

        let primed = inc.prime(&current, &scaling).unwrap();
        prop_assert!(summaries_bitwise_eq(
            &primed,
            &full.evaluate(&current, &scaling).unwrap()
        ));

        for (pick, accept) in walk {
            let len = current.neighbourhood_len();
            if len == 0 {
                break;
            }
            let mv = current.nth_neighbourhood_move(pick.index(len)).unwrap();
            let inverse = current.apply(mv);
            let got = inc.evaluate_move(&current, &scaling, mv).unwrap();
            let want = full.evaluate(&current, &scaling).unwrap();
            prop_assert!(
                summaries_bitwise_eq(&got, &want),
                "walk diverged on {}: {:?} vs {:?}",
                mv, got, want
            );
            if accept {
                inc.accept();
            } else {
                inc.reject();
                current.apply(inverse);
            }
        }

        // Fallback-threshold boundary: relocating the task visited at the
        // cutoff order position replays the suffix (incremental); one
        // position earlier replays everything (fallback). Both exact.
        let cutoff = fallback_cutoff(n);
        prop_assume!(cutoff > 0);
        for (pos, expect_incremental) in [(cutoff, true), (cutoff - 1, false)] {
            let task = inc.soa().schedule_order()[pos];
            let to = CoreId::new((current.core_of(task).index() + 1) % 3);
            let mv = Move::Relocate { task, to };
            let before = inc.stats();
            current.apply(mv);
            let got = inc.evaluate_move(&current, &scaling, mv).unwrap();
            let want = full.evaluate(&current, &scaling).unwrap();
            prop_assert!(summaries_bitwise_eq(&got, &want));
            inc.accept();
            let after = inc.stats();
            prop_assert_eq!(
                after.incremental - before.incremental,
                u64::from(expect_incremental)
            );
            prop_assert_eq!(
                after.fallback - before.fallback,
                u64::from(!expect_incremental)
            );
        }
    }

    /// The SER model is multiplicative in λ_ref and decreasing in Vdd.
    #[test]
    fn ser_model_properties(
        lambda_exp in -12.0f64..-6.0,
        v in 0.3f64..1.3,
        dv in 0.01f64..0.3,
    ) {
        let l1 = SerModel::calibrated(10f64.powf(lambda_exp));
        let l10 = SerModel::calibrated(10f64.powf(lambda_exp + 1.0));
        prop_assert!((l10.lambda(v) / l1.lambda(v) - 10.0).abs() < 1e-6);
        prop_assert!(l1.lambda(v - dv) > l1.lambda(v));
    }

    /// Unit hashes are injective over near-identical units: flipping any
    /// single content field produces a distinct hash, while presentation
    /// fields (index, scenario) never matter.
    #[test]
    fn unit_hash_separates_every_content_field(
        cores in 2usize..6,
        levels in 2usize..5,
        seed in any::<u64>(),
        budget_pick in 0usize..4,
        index in any::<usize>(),
    ) {
        let budgets = [
            BudgetSpec::Fast,
            BudgetSpec::Smoke,
            BudgetSpec::Paper,
            BudgetSpec::Thorough,
        ];
        let base = Unit {
            index,
            scenario: "prop".into(),
            kind: UnitKind::Optimize,
            app: AppRef::Spec(AppSpec::Mpeg2),
            cores,
            levels,
            budget: budgets[budget_pick],
            selection: SelectionPolicy::PowerGammaProduct,
            seed,
        };
        let h0 = unit_hash(&base);

        // Presentation fields are hash-transparent.
        let mut relabeled = base.clone();
        relabeled.index = index.wrapping_add(17);
        relabeled.scenario = "other".into();
        prop_assert_eq!(h0, unit_hash(&relabeled));

        // One-field flips: every variant hashes apart from the base and
        // from each other.
        let variants: Vec<Unit> = vec![
            { let mut u = base.clone(); u.cores += 1; u },
            { let mut u = base.clone(); u.levels = if levels == 4 { 2 } else { levels + 1 }; u },
            { let mut u = base.clone(); u.seed = seed.wrapping_add(1); u },
            { let mut u = base.clone(); u.budget = budgets[(budget_pick + 1) % 4]; u },
            { let mut u = base.clone(); u.selection = SelectionPolicy::GammaFirst; u },
            { let mut u = base.clone(); u.app = AppRef::Spec(AppSpec::Fig8); u },
            { let mut u = base.clone(); u.app = AppRef::Spec(AppSpec::Random { tasks: 20, seed }); u },
            { let mut u = base.clone(); u.kind = UnitKind::Sweep { count: 100, scale: 1 }; u },
            { let mut u = base.clone(); u.kind = UnitKind::Sweep { count: 100, scale: 2 }; u },
        ];
        let mut seen = vec![h0];
        for v in &variants {
            let h = unit_hash(v);
            prop_assert!(!seen.contains(&h), "hash collision for {:?}", v);
            seen.push(h);
        }
    }

    /// Spec parse → expand → hash is a pure function of the source text:
    /// re-parsing randomized grammar inputs reproduces the identical unit
    /// list hash, and every unit hash is stable under re-hashing.
    #[test]
    fn spec_parse_expand_hash_is_deterministic(
        base_seed in any::<u64>(),
        lo in 2usize..4,
        span in 0usize..3,
        app_pick in 0usize..3,
        budget_pick in 0usize..4,
        explicit_seeds in proptest::collection::vec(any::<u64>(), 0..3),
        kind_pick in 0usize..3,
    ) {
        let apps = ["mpeg2", "fig8", "mpeg2, random:15:9"][app_pick];
        let budget = ["fast", "smoke", "paper", "thorough"][budget_pick];
        let kind = ["optimize", "baseline", "sweep"][kind_pick];
        let mut scenario = format!("[scenario]\nkind = \"{kind}\"\napps = \"{apps}\"\ncores = \"{lo}-{}\"\n", lo + span);
        if kind == "baseline" {
            scenario.push_str("objectives = \"tm,tmr\"\n");
        }
        if kind == "sweep" {
            scenario.push_str("count = 7\nscales = \"1,2\"\n");
        }
        if !explicit_seeds.is_empty() {
            let list: Vec<String> = explicit_seeds.iter().map(u64::to_string).collect();
            scenario.push_str(&format!("seeds = \"{}\"\n", list.join(",")));
        }
        let source = format!("name = \"prop\"\nbudget = \"{budget}\"\nseed = {base_seed}\n{scenario}");

        let a = parse_campaign(&source).expect("generated spec parses").expand();
        let b = parse_campaign(&source).expect("generated spec parses").expand();
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(units_hash(&a), units_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(unit_hash(x), unit_hash(y));
            prop_assert_eq!(unit_hash(x), unit_hash(x), "re-hash is stable");
        }
    }

    /// Journal records survive a serialize → parse → serialize round trip
    /// byte-identically, for adversarial strings and float values.
    #[test]
    fn journal_records_round_trip_byte_identical(
        index in any::<usize>(),
        scenario_bytes in proptest::collection::vec(0u8..128, 0..12),
        cores in 1usize..9,
        levels in 2usize..5,
        seed in any::<u64>(),
        status_pick in 0usize..3,
        power in proptest::option::of(-1.0e12f64..1.0e12),
        gamma_mant in proptest::option::of(1u64..u64::MAX),
        evaluations in proptest::option::of(any::<usize>()),
        mapping in proptest::option::of(proptest::collection::vec(0u8..128, 0..16)),
        seus in proptest::option::of(any::<u64>()),
    ) {
        let to_string = |bytes: &[u8]| -> String {
            bytes
                .iter()
                .map(|&b| char::from(b))
                .filter(|c| *c != '\u{0}')
                .collect()
        };
        // Drive odd-but-finite float bit patterns through the gamma slot.
        let gamma = gamma_mant.map(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() { v } else { f64::from_bits(bits >> 12) }
        });
        let record = UnitRecord {
            index,
            scenario: to_string(&scenario_bytes),
            kind: "optimize".into(),
            app: "mpeg2".into(),
            cores,
            levels,
            seed,
            status: ["ok", "infeasible", "too-few-tasks"][status_pick],
            power_mw: power,
            gamma,
            tm_seconds: None,
            r_kbits: Some(0.1 + cores as f64),
            evaluations,
            scaling: None,
            mapping: mapping.as_deref().map(to_string),
            experienced_seus: seus,
        };
        let line = json_record(&record);
        let parsed = sea_dse::campaign::journal::parse_record_json(&line)
            .unwrap_or_else(|e| panic!("parse failed: {e} for {line}"));
        prop_assert_eq!(json_record(&parsed), line);
    }

    /// Pipelined makespan is bounded below by the busiest core's total
    /// work and above by fully serial execution.
    #[test]
    fn pipelined_makespan_bounds(
        iterations in 1u32..40,
        costs in proptest::collection::vec(1u64..50, 2..8),
    ) {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| b.add_task(format!("t{i}"), Cycles::new(c * 1_000_000)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], Cycles::ZERO).unwrap();
        }
        let g = b.build().unwrap();
        let mut rm = RegisterModelBuilder::new(ids.len());
        for (i, id) in ids.iter().enumerate() {
            let blk = rm.add_block(format!("p{i}"), Bits::new(100));
            rm.assign(*id, blk).unwrap();
        }
        let app = Application::new(
            "chain",
            g,
            rm.build(),
            ExecutionMode::Pipelined { iterations },
            1e9,
        ).unwrap();
        let arch = Architecture::homogeneous(2, LevelSet::arm7_three_level());
        let ctx = EvalContext::new(&app, &arch);
        // Alternate tasks across the two cores.
        let mapping = Mapping::try_new(
            (0..ids.len()).map(|i| CoreId::new(i % 2)).collect(),
            2,
        ).unwrap();
        let scaling = ScalingVector::all_nominal(&arch);
        let sched = ctx.schedule(&mapping, &scaling).unwrap();

        let f = 200e6;
        let total: u64 = costs.iter().map(|c| c * 1_000_000).sum();
        let serial = total as f64 / f;
        let core_work = |c: usize| -> f64 {
            costs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == c)
                .map(|(_, &x)| (x * 1_000_000) as f64)
                .sum::<f64>()
                / f
        };
        let busiest = core_work(0).max(core_work(1));
        prop_assert!(sched.makespan_s() >= busiest - 1e-9);
        // Fully serial with no overlap would be `serial` per iteration...
        // the pipeline must do no worse than that plus one fill pass.
        prop_assert!(sched.makespan_s() <= serial * f64::from(iterations) + serial + 1e-9);
    }
}

/// Golden hex fixtures: unit and spec hashes must be *stable across
/// process runs and builds* — journals and cache entries written by one
/// binary must be readable by the next. A failure here means the
/// canonical encoding changed; if that change is intentional, bump the
/// encoding version in `crates/campaign/src/hash.rs` so stale artifacts
/// are refused, and regenerate these constants.
#[test]
fn content_hashes_match_golden_fixtures() {
    let optimize = Unit {
        index: 0,
        scenario: "golden".into(),
        kind: UnitKind::Optimize,
        app: AppRef::Spec(AppSpec::Mpeg2),
        cores: 4,
        levels: 3,
        budget: BudgetSpec::Smoke,
        selection: SelectionPolicy::PowerGammaProduct,
        seed: 6_204_766,
    };
    assert_eq!(
        unit_hash(&optimize).to_hex(),
        "22d4fb4c6f31dfb1d916dfda56396258"
    );

    let mut simulate = optimize.clone();
    simulate.kind = UnitKind::Simulate {
        scaling: vec![2, 2, 3, 2],
        groups: vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7], vec![8], vec![9, 10]],
        ser: sea_dse::arch::ser::PAPER_SER,
    };
    simulate.seed = 13;
    assert_eq!(
        unit_hash(&simulate).to_hex(),
        "8502b406178617751a6f4484d345ec5d"
    );

    // Inline applications hash by *content*, pinned independently of the
    // spec-string form.
    let mut inline = optimize.clone();
    inline.app = AppRef::Inline(std::sync::Arc::new(AppSpec::Mpeg2.build().unwrap()));
    assert_eq!(
        unit_hash(&inline).to_hex(),
        "235421e82db72a776df1c8eec0f3391c"
    );

    // The quickstart builtin's spec hash — the value a resume journal
    // header stores for `sea-dse campaign --builtin quickstart`.
    let quickstart = parse_campaign(
        sea_dse::experiments::campaigns::builtin("quickstart")
            .expect("builtin exists")
            .source,
    )
    .expect("builtin parses")
    .expand();
    assert_eq!(
        units_hash(&quickstart).to_hex(),
        "592cb1dd547d8e2657787e7c5d35cf65"
    );
}
