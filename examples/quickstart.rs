//! Quickstart: optimize the MPEG-2 decoder on a four-core MPSoC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the proposed soft error-aware design optimization (paper Fig. 4)
//! and prints the winning design: per-core voltage scaling, task mapping,
//! power, execution time and expected SEUs.

use sea_dse::opt::{DesignOptimizer, OptimizerConfig};
use sea_dse::taskgraph::mpeg2;

fn main() {
    let app = mpeg2::application();
    println!(
        "application: {} ({} tasks, deadline {:.3} s, {} frames)\n",
        app.name(),
        app.graph().len(),
        app.deadline_s(),
        mpeg2::FRAMES
    );

    let optimizer = DesignOptimizer::new(OptimizerConfig::paper(4));
    let outcome = optimizer
        .optimize(&app)
        .expect("the four-core decoder admits feasible designs");

    let best = &outcome.best;
    println!("winning design");
    println!("  scaling: {}", best.scaling);
    println!("  mapping: {}", best.mapping);
    println!("  P  = {:.2} mW", best.evaluation.power_mw);
    println!(
        "  TM = {:.2} s ({:.2}e9 nominal cycles, deadline {:.2} s)",
        best.evaluation.tm_seconds,
        best.evaluation.tm_nominal_cycles / 1e9,
        app.deadline_s()
    );
    println!("  R  = {:.1} kbit/cycle", best.evaluation.r_total_kbits());
    println!("  Gamma = {:.3e} expected SEUs", best.evaluation.gamma);

    println!(
        "\nexplored {} voltage-scaling combinations:",
        outcome.explored.len()
    );
    for o in &outcome.explored {
        let e = o.best.as_ref().expect("every scaling produced a design");
        println!(
            "  {}  feasible={}  P={:6.2} mW  Gamma={:.3e}",
            o.scaling, o.feasible, e.evaluation.power_mw, e.evaluation.gamma
        );
    }
}
