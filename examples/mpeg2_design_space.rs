//! The MPEG-2 decoder design-space study (paper §III and §V).
//!
//! ```text
//! cargo run --release --example mpeg2_design_space [paper]
//! ```
//!
//! Regenerates the decoder-centric artefacts: the Fig. 3 mapping study,
//! Table II (three soft error-unaware baselines vs. the proposed flow) and
//! the Fig. 9 matched-scaling comparison. Pass `paper` for the full search
//! budgets (slower); the default smoke budgets show the same shape.

use sea_dse::experiments::{fig3, fig9, table2, EffortProfile};

fn main() {
    let profile = match std::env::args().nth(1).as_deref() {
        Some("paper") => EffortProfile::Paper,
        _ => EffortProfile::Smoke,
    };

    // Fig. 3: 120 random mappings on four cores.
    let fig = fig3::run(120, 42).expect("Fig. 3 sweep");
    let s = fig.summary();
    println!(
        "Fig. 3 - impact of task mapping ({} mappings)",
        fig.scale1.len()
    );
    println!(
        "  corr(TM, R)      = {:+.3} (trade-off of panel a)",
        s.corr_tm_r
    );
    println!(
        "  Gamma s2/s1      = {:.2}x (Observation 3: ~2.5x)",
        s.gamma_ratio
    );
    println!("  TM s2/s1         = {:.2}x (~2x)", s.tm_ratio);
    println!(
        "  concavity edges  = {:.2}x / {:.2}x over the minimum Gamma\n",
        s.gamma_edge_over_min_low, s.gamma_edge_over_min_high
    );

    // Table II: the four experiments.
    let t2 = table2::run(profile, 4).expect("Table II");
    println!("{}", t2.to_table().to_ascii());
    let violations = t2.shape_violations();
    if violations.is_empty() {
        println!("all Table II qualitative orderings reproduced\n");
    } else {
        println!("deviations from the published orderings: {violations:?}\n");
    }

    // Fig. 9: matched-scaling comparison.
    let f9 = fig9::from_table2(&t2).expect("Fig. 9");
    println!("{}", f9.to_table().to_ascii());
    println!(
        "(paper: Exp:2 experiences up to +38% SEUs vs the proposed design, \
         Exp:1 +28% at matched scaling)"
    );
}
