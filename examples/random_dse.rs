//! Design-space exploration on random workloads (paper §V, Table III,
//! Figs. 10–11).
//!
//! ```text
//! cargo run --release --example random_dse [n_tasks] [seed]
//! ```
//!
//! Generates a random task graph with the paper's published parameters
//! (computation 1–30 units, communication 1–10 units of 3.5e6 cycles,
//! register footprints 1–5 kbit, exponential out-degree, deadline N/2 s),
//! then studies the proposed optimizer across architecture allocations and
//! voltage-scaling level sets.

use sea_dse::experiments::{fig10, fig11, EffortProfile};
use sea_dse::taskgraph::generator::RandomGraphConfig;

fn main() {
    let n_tasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let profile = EffortProfile::Smoke;

    let cfg = RandomGraphConfig::paper(n_tasks);
    let app = cfg.generate(seed).expect("valid generator parameters");
    println!(
        "workload: {} ({} tasks, {} edges, deadline {:.1} s, seed {})\n",
        app.name(),
        app.graph().len(),
        app.graph().edges().len(),
        app.deadline_s(),
        seed
    );

    // Architecture allocation study (Fig. 10: Exp:3 vs Exp:4).
    let f10 = fig10::run_on(&app, &[2, 3, 4, 5, 6], profile).expect("Fig. 10 study");
    println!("{}", f10.to_table().to_ascii());
    println!(
        "proposed flow wins on Gamma at {:.0}% of feasible allocations\n",
        f10.proposed_win_rate() * 100.0
    );

    // Voltage-scaling level study (Fig. 11) on six cores.
    let f11 = fig11::run_on(&app, 6, profile).expect("Fig. 11 study");
    println!("{}", f11.to_table().to_ascii());
    if let (Some((p2, _, g2b)), Some((p3, _, g3b))) = (f11.point(2), f11.point(3)) {
        println!(
            "2 levels vs 3 levels: {:+.0}% power, {:+.0}% SEUs per executed cycle \
             (paper: +28% power, -42% SEUs)",
            (p2 - p3) / p3 * 100.0,
            (g2b - g3b) / g3b * 100.0
        );
    }
}
