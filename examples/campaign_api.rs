//! Driving a campaign from the library API: parse a spec, expand the
//! grid, run it on a worker pool with a streaming sink, and post-process
//! the typed results.
//!
//! ```text
//! cargo run --release --example campaign_api
//! ```

use sea_dse::campaign::{human_report, parse_campaign, run_units, NullSink, UnitPayload};

const SPEC: &str = r#"
name = "api-demo"
budget = "fast"

[scenario]
name = "allocation-study"
kind = "optimize"
apps = "mpeg2"
cores = "2-4"

[scenario]
name = "exp2-baseline"
kind = "baseline"
objectives = "tm"
apps = "mpeg2"
cores = "4"
"#;

fn main() {
    let campaign = parse_campaign(SPEC).expect("well-formed spec");
    let units = campaign.expand();
    println!(
        "campaign `{}` expands to {} units\n",
        campaign.name,
        units.len()
    );

    // Results come back in enumeration order regardless of the worker
    // count; sinks see completions as they happen (NullSink drops them).
    let results = run_units(&units, 4, &mut NullSink).expect("units run");

    let records: Vec<_> = results.iter().map(|r| r.record.clone()).collect();
    print!("{}", human_report(&records));

    // The typed payloads carry the full optimization outcomes for
    // post-processing beyond what the flat records show.
    for result in &results {
        if let UnitPayload::Design(out) = &result.payload {
            println!(
                "{} cores={}: explored {} scalings, best P*Gamma = {:.3e}",
                result.record.kind,
                result.record.cores,
                out.explored.len(),
                out.best.evaluation.power_mw * out.best.evaluation.gamma
            );
        }
    }
}
