//! Recovery-aware comparison of two designs (extension study).
//!
//! ```text
//! cargo run --release --example recovery_analysis
//! ```
//!
//! The paper minimizes the number of SEUs experienced; this example shows
//! what that buys once a recovery mechanism is layered on top (the
//! re-execution / checkpointing context of the paper's refs. [5]–[8]):
//! the soft error-aware design needs less recovery work and keeps more
//! deadline slack than a parallelism-optimized design at the same scaling.

use sea_dse::arch::{Architecture, LevelSet, ScalingVector, SerModel};
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sched::recovery::{analyze, RecoveryPolicy};
use sea_dse::sched::Mapping;
use sea_dse::taskgraph::mpeg2;

fn main() {
    let app = mpeg2::application();
    let arch = Architecture::arm7_calibrated(4, LevelSet::arm7_three_level());
    // A near-future raw SER: one upset per ~10¹³ bit-cycles.
    let ser = SerModel::calibrated(1e-13);
    let ctx = EvalContext::new(&app, &arch).with_ser(ser);
    let scaling = ScalingVector::try_new(vec![2, 2, 3, 2], &arch).expect("Table II scaling");

    let designs = [
        (
            "soft error-aware (Table II Exp:4)",
            Mapping::from_groups(&[&[0, 1, 2, 3, 4, 5], &[6, 7], &[8], &[9, 10]], 4)
                .expect("well-formed"),
        ),
        (
            "parallelism-optimized",
            Mapping::from_groups(&[&[0, 3, 8], &[1, 4, 9], &[2, 5, 10], &[6, 7]], 4)
                .expect("well-formed"),
        ),
    ];

    let policies = [
        ("no recovery", RecoveryPolicy::None),
        (
            "re-execution (95% coverage)",
            RecoveryPolicy::ReExecution {
                detection_coverage: 0.95,
            },
        ),
        (
            "checkpointing (100 ms interval)",
            RecoveryPolicy::Checkpointing {
                detection_coverage: 0.95,
                interval_s: 0.1,
                save_cost_s: 2e-4,
            },
        ),
    ];

    for (name, mapping) in &designs {
        let eval = ctx.evaluate(mapping, &scaling).expect("evaluable");
        let counts: Vec<usize> = mapping.groups().iter().map(Vec::len).collect();
        println!("{name}");
        println!(
            "  TM = {:.3} s (deadline {:.3} s), R = {:.1} kbit, Gamma = {:.3}",
            eval.tm_seconds,
            app.deadline_s(),
            eval.r_total_kbits(),
            eval.gamma
        );
        for (pname, policy) in &policies {
            let r = analyze(
                &eval,
                &counts,
                app.mode().iterations(),
                app.deadline_s(),
                *policy,
            );
            println!(
                "  {pname:32} overhead {:>8.4} s  residual {:.3}  deadline {}",
                r.expected_overhead_s,
                r.residual_gamma,
                if r.meets_deadline_with_recovery {
                    "met"
                } else {
                    "MISSED"
                }
            );
        }
        println!();
    }

    println!(
        "note: the soft error-aware design needs the least recovery work and\n\
         leaves the fewest undetected upsets, but the power-first selection\n\
         rides the deadline (TM ~= TMref), so *any* recovery overhead can\n\
         break the constraint — a recovery-aware selection policy would keep\n\
         deadline slack proportional to the expected overhead. That coupling\n\
         is exactly what `sea_sched::recovery::analyze` exposes."
    );
}
