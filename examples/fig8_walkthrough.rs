//! The Fig. 8 tutorial walkthrough (paper §IV-B).
//!
//! ```text
//! cargo run --release --example fig8_walkthrough
//! ```
//!
//! Reproduces the paper's worked example on the six-task graph with the
//! register table r1..r9: the greedy `InitialSEAMapping` seed, the
//! `OptimizedMapping` refinement at scaling (1, 2, 2), the resulting
//! schedule as an ASCII Gantt chart, and a Monte-Carlo fault-injection run
//! over the final design.

use sea_dse::arch::{Architecture, LevelSet, ScalingVector};
use sea_dse::opt::initial::initial_sea_mapping;
use sea_dse::opt::optimized::optimized_mapping;
use sea_dse::opt::SearchBudget;
use sea_dse::sched::metrics::EvalContext;
use sea_dse::sim::{simulate_design, SimConfig};
use sea_dse::taskgraph::fig8;

fn main() {
    let app = fig8::application();
    let arch = Architecture::homogeneous(3, LevelSet::arm7_three_level());
    let ctx = EvalContext::new(&app, &arch);
    let scaling =
        ScalingVector::try_new(vec![1, 2, 2], &arch).expect("walkthrough scaling (1,2,2)");

    println!("task graph (Fig. 8a):\n{}", app.graph().to_dot());
    println!(
        "deadline TMref = {:.0} ms, scaling = {}\n",
        app.deadline_s() * 1e3,
        scaling
    );

    // Stage 1: greedy soft error-aware initial mapping (Fig. 6).
    let initial = initial_sea_mapping(&ctx, &scaling).expect("six tasks on three cores");
    let initial_eval = ctx.evaluate(&initial, &scaling).expect("evaluable");
    println!("InitialSEAMapping: {initial}");
    println!(
        "  TM = {:.1} ms, Gamma = {:.1}, feasible = {}\n",
        initial_eval.tm_seconds * 1e3,
        initial_eval.gamma,
        initial_eval.meets_deadline
    );

    // Stage 2: neighbourhood search under list scheduling (Fig. 7).
    let out =
        optimized_mapping(&ctx, &scaling, initial, SearchBudget::fast(), 7).expect("search runs");
    println!("OptimizedMapping:  {}", out.mapping);
    println!(
        "  TM = {:.1} ms, Gamma = {:.1}, feasible = {} ({} evaluations)\n",
        out.evaluation.tm_seconds * 1e3,
        out.evaluation.gamma,
        out.feasible,
        out.evaluations
    );

    let schedule = ctx.schedule(&out.mapping, &scaling).expect("schedulable");
    println!(
        "schedule (Gantt, {:.1} ms span):",
        schedule.makespan_s() * 1e3
    );
    println!("{}", schedule.gantt(64));

    // Fault injection over the final design at a boosted SER so individual
    // upsets actually appear in a 75 ms window.
    let mut cfg = SimConfig::seeded(11);
    cfg.ser = sea_dse::arch::SerModel::calibrated(1e-5);
    let report =
        simulate_design(&app, &arch, &out.mapping, &scaling, &cfg).expect("simulation runs");
    println!(
        "fault injection @ SER 1e-5: {} injected, {} experienced (analytic {:.1})",
        report.faults.total_injected, report.faults.total_experienced, report.analytic.gamma
    );
    for ev in report.faults.events.iter().take(8) {
        println!(
            "  SEU on {} at {:.2} ms in {}",
            ev.core,
            ev.time_s * 1e3,
            ev.block
                .map_or_else(|| "unused space".to_string(), |b| b.to_string())
        );
    }
}
